"""Performance harness: compiled engine, adaptive stepping, delta solves.

Times the workloads the performance work targets and writes
``BENCH_sim.json`` at the repository root so future changes have a perf
trajectory to compare against:

* **campaign** — the section-3 defect catalog (4 defect kinds, 2 pipe
  values) against the three-oracle setup on a 3-stage chain with a
  shared detector.  Baseline: legacy per-component stamping, cold
  starts.  Optimized: compiled stamping + fault-free warm starts.
* **campaign_delta** — the same catalog, warm-started compiled campaign
  as the baseline, against the low-rank fault-delta path (shared
  fault-free factorization, no per-defect injection/compilation).  The
  section also records that both campaigns return identical verdicts.
* **campaign_batched** — the same catalog, warm-started compiled
  campaign as the baseline, against the batched engine: all
  batch-eligible defects solved together as a stacked Newton iteration
  (one vectorised device evaluation and one multi-RHS solve per
  iteration for the whole batch).  Also records that the verdicts are
  identical to the warm campaign's and how many members fell back to
  the serial per-defect ladder.
* **transient** — an 8-stage buffer chain driven at 1 GHz for 2 ns.
  Baseline: legacy stamping.  Optimized: compiled stamping with the
  cached companion pattern.
* **transient_adaptive** — the same chain, compiled fixed-step as the
  baseline, against the LTE-controlled adaptive stepper; accuracy is
  pinned against a 4x-oversampled fixed-step reference.
* **telemetry** — the campaign workload untraced vs fully traced
  (``<3%`` overhead gate), plus the trace artifacts: one traced
  campaign's JSONL (``BENCH_trace.jsonl``) and its rendered run report
  (``BENCH_report.md``); the section's solver counters come from that
  trace.
* **robustness** — the campaign workload unguarded vs guarded with the
  fault-tolerance layer (per-defect solver deadline + JSONL
  checkpointing; ``<3%`` overhead gate), plus the checkpoint artifact
  (``BENCH_checkpoint.jsonl``) and a proof that resuming from it is
  record-identical to the uninterrupted run.
* **campaign_service** — the full 145-defect catalog (monitor sites
  included) through the asyncio campaign service: a cold sharded run
  populating the content-addressed result store (gated on parallel
  efficiency vs the serial solve), a warm re-submission served from
  cache (gated ≥10x over cold with ≥95% hit-rate and field-identical
  records), and a concurrent-client load test over the JSON-lines TCP
  front end.
* **observability** — the operational-observability layer: the
  Chrome/Perfetto exporter round-trips every span of the telemetry
  section's trace into ``BENCH_trace.perfetto.json``, a parallel
  traced campaign's events all carry the root ``trace_id``, the
  sampling profiler stays under 5% overhead on a traced campaign, the
  hotspot table is non-empty with self-times bounded by wall time, and
  a live TCP service's ``stats`` op parses as Prometheus text
  exposition.
* **testgen_atpg** — the gate-level ATPG engine on the ISCAS-like
  benchmark networks (500 and 1000 gates): strict stuck-at fault
  coverage gated at 99% on the 500-gate network, every unclassified
  fault re-screened with a large independent random batch (gate: none
  detectable — the engine leaves behind only redundant faults it could
  not prove untestable), wall time bounded per network, and a
  structural no-enumeration check (PODEM calls bounded by the
  collapsed fault list, applied vectors a vanishing fraction of the
  2^inputs input space).  The per-vector coverage-growth curves (and a
  sequential plan's toggle-coverage growth) land in
  ``BENCH_atpg_growth.json``.

Both baseline and optimized run in this same process (same BLAS, same
interpreter), so the reported speedups are apples-to-apples.  Run with::

    PYTHONPATH=src python benchmarks/perf/run_perf.py

See docs/performance.md for what the numbers mean and how to read them.
"""

from __future__ import annotations

import gc
import json
import pathlib
import time

import numpy as np

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    FlagOracle,
    IddqOracle,
    LogicOracle,
    enumerate_defects,
    run_campaign,
)
from repro.sim.options import SimOptions
from repro.sim.transient import transient
from repro.telemetry import RunReport, Telemetry

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_sim.json"
TRACE_OUTPUT = REPO_ROOT / "BENCH_trace.jsonl"
REPORT_OUTPUT = REPO_ROOT / "BENCH_report.md"
CHECKPOINT_OUTPUT = REPO_ROOT / "BENCH_checkpoint.jsonl"
PERFETTO_OUTPUT = REPO_ROOT / "BENCH_trace.perfetto.json"
ATPG_GROWTH_OUTPUT = REPO_ROOT / "BENCH_atpg_growth.json"
DEFECT_FAMILIES_OUTPUT = REPO_ROOT / "BENCH_defect_families.json"
#: The committed witnesses for the extension defect families; the
#: bench replays them against the serial engine subset and gates on
#: bit-identical agreement.
FAMILY_WITNESSES = (
    REPO_ROOT / "tests" / "corpus" / "oxide_severity_escape.json",
    REPO_ROOT / "tests" / "corpus" / "lowswing_link_healing.json",
    REPO_ROOT / "tests" / "corpus" / "ila_c_testability.json",
)

#: Acceptance targets for the optimisation passes.
CAMPAIGN_TARGET = 3.0
CAMPAIGN_DELTA_TARGET = 1.5
CAMPAIGN_BATCHED_TARGET = 3.0
TRANSIENT_TARGET = 2.0
TRANSIENT_ADAPTIVE_TARGET = 2.0
#: Whole-trace accuracy bound for the adaptive stepper, volts.
ADAPTIVE_MAX_ERROR_V = 1e-3
#: Telemetry must stay near-free: traced campaign vs untraced, percent.
TELEMETRY_MAX_OVERHEAD_PCT = 3.0
#: The fault-tolerance machinery (per-defect solver deadline + JSONL
#: checkpointing) must stay near-free on an unperturbed campaign.
ROBUSTNESS_MAX_OVERHEAD_PCT = 3.0
#: Warm (fully cached) service re-run vs the cold run that filled the
#: store, and the floor on how much of it must come from cache.
CAMPAIGN_SERVICE_TARGET = 10.0
SERVICE_MIN_HIT_RATE = 0.95
#: Cold sharded run must stay close to ideal scaling:
#: serial_time / (workers x cold_wall).
SERVICE_MIN_EFFICIENCY = 0.7
#: Sampling profiler attached to a traced campaign, percent overhead.
OBSERVABILITY_MAX_OVERHEAD_PCT = 5.0
#: Profiler sampling interval for the bench runs (fine enough that a
#: sub-second campaign still collects a meaningful sample count).
PROFILE_BENCH_INTERVAL_S = 0.002
#: Strict stuck-at coverage floor for the 500-gate ATPG benchmark
#: (unclassified faults count *against* coverage, see AtpgRun.coverage).
ATPG_MIN_COVERAGE = 0.99
#: ATPG wall-time ceilings per benchmark network, seconds.  Measured
#: ~1.3 s (500 gates) / ~13 s (1000 gates); generous CI margin.
ATPG_MAX_RUNTIME_S = {"iscas_like_s1": 15.0, "iscas_like_s2": 90.0}
#: Independent random re-screen of the engine's unclassified faults.
ATPG_SCREEN_VECTORS = 8192


def _best_of(func, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs (after one warmup)."""
    func()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _campaign_bench():
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(
        chain.circuit,
        kinds=("pipe", "terminal-short", "resistor-short", "resistor-open"),
        pipe_resistances=(2e3, 4e3)))
    return chain, oracles, defects


def bench_campaign() -> dict:
    chain, oracles, defects = _campaign_bench()

    legacy = SimOptions(use_compiled=False)
    baseline = _best_of(lambda: run_campaign(
        chain.circuit, defects, oracles, options=legacy, warm_start=False))
    optimized = _best_of(lambda: run_campaign(chain.circuit, defects, oracles))

    warm = run_campaign(chain.circuit, defects, oracles)
    cold = run_campaign(chain.circuit, defects, oracles, warm_start=False)
    converged = [r for r in warm.records if r.converged]
    return {
        "defects": len(defects),
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": CAMPAIGN_TARGET,
        "mean_nr_iterations_warm": round(
            sum(r.newton_iterations for r in converged) / len(converged), 2),
        "mean_nr_iterations_cold": round(
            sum(r.newton_iterations for r in cold.records if r.converged)
            / len(converged), 2),
    }


def bench_campaign_delta() -> dict:
    """Warm-started campaign vs the low-rank fault-delta path."""
    chain, oracles, defects = _campaign_bench()

    baseline = _best_of(lambda: run_campaign(chain.circuit, defects, oracles))
    optimized = _best_of(lambda: run_campaign(
        chain.circuit, defects, oracles, delta=True))

    warm = run_campaign(chain.circuit, defects, oracles)
    delta = run_campaign(chain.circuit, defects, oracles, delta=True)
    identical = all(
        w.verdicts == d.verdicts and w.converged == d.converged
        for w, d in zip(warm.records, delta.records))
    return {
        "defects": len(defects),
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": CAMPAIGN_DELTA_TARGET,
        "verdicts_identical": identical,
        "solver_counts": delta.solver_counts(),
        "woodbury_fallbacks": delta.woodbury_fallbacks,
        "n_factorizations": sum(r.n_factorizations for r in delta.records),
        "n_factorizations_baseline": sum(
            r.n_factorizations for r in warm.records),
    }


def bench_campaign_batched() -> dict:
    """Warm-started campaign vs the batched multi-defect engine.

    The batched engine stacks every batch-eligible defect into one
    vectorised Newton iteration (``repro.sim.batch``), so the per-defect
    Python dispatch the serial delta path still pays collapses into a
    handful of array operations per iteration.  Verdicts must be
    identical to the warm campaign's; any member that leaves the batch
    is re-solved through the serial ladder and counted in
    ``batch_fallbacks``.
    """
    chain, oracles, defects = _campaign_bench()

    baseline = _best_of(lambda: run_campaign(chain.circuit, defects, oracles))
    optimized = _best_of(lambda: run_campaign(
        chain.circuit, defects, oracles, batched=True))

    warm = run_campaign(chain.circuit, defects, oracles)
    batched = run_campaign(chain.circuit, defects, oracles, batched=True)
    identical = all(
        w.verdicts == b.verdicts and w.converged == b.converged
        for w, b in zip(warm.records, batched.records))
    occupancy = (batched.batch_occupancy / batched.n_batched_solves
                 if batched.n_batched_solves else 0.0)
    return {
        "defects": len(defects),
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": CAMPAIGN_BATCHED_TARGET,
        "verdicts_identical": identical,
        "solver_counts": batched.solver_counts(),
        "n_batched_solves": batched.n_batched_solves,
        "mean_batch_occupancy": round(occupancy, 2),
        "batch_fallbacks": batched.batch_fallbacks,
    }


def bench_transient() -> dict:
    chain = buffer_chain(NOMINAL, n_stages=8, frequency=1e9)
    circuit = chain.circuit
    t_stop, dt = 2e-9, 2e-12

    baseline = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions(use_compiled=False)), repeats=2)
    optimized = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions()), repeats=2)
    return {
        "n_stages": 8,
        "t_stop_s": t_stop,
        "dt_s": dt,
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": TRANSIENT_TARGET,
    }


def bench_transient_adaptive() -> dict:
    """Compiled fixed-step vs the LTE-controlled adaptive stepper.

    Accuracy is measured at the adaptive stepper's own time points
    against a 4x-oversampled fixed-step reference (linear interpolation
    of the dense reference trace), over every node of the chain.
    """
    chain = buffer_chain(NOMINAL, n_stages=8, frequency=1e9)
    circuit = chain.circuit
    t_stop, dt = 2e-9, 2e-12

    baseline = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions()), repeats=2)
    optimized = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions(adaptive_step=True)), repeats=2)

    adaptive = transient(circuit, t_stop, dt, SimOptions(adaptive_step=True))
    reference = transient(circuit, t_stop, dt / 4, SimOptions())
    t_ad = np.asarray(adaptive.times)
    t_ref = np.asarray(reference.times)
    max_error = 0.0
    for net in adaptive.structure.net_index:
        v_ad = np.asarray(adaptive.wave(net).values)
        v_ref = np.interp(t_ad, t_ref, np.asarray(reference.wave(net).values))
        max_error = max(max_error, float(np.max(np.abs(v_ad - v_ref))))

    fixed = transient(circuit, t_stop, dt, SimOptions())
    stats = adaptive.stats
    # The adaptive stepper must actually exercise the factor cache:
    # accepted steps that keep dt re-use the previous factorization, so
    # a zero here means the cache went dead on this path again.
    n_reuses = stats.n_reuses if stats else 0
    return {
        "n_stages": 8,
        "t_stop_s": t_stop,
        "dt_s": dt,
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": TRANSIENT_ADAPTIVE_TARGET,
        "timepoints_fixed": len(fixed.times),
        "timepoints_adaptive": len(adaptive.times),
        "rejected_steps": stats.n_rejected_steps if stats else None,
        "n_factorizations": stats.n_factorizations if stats else None,
        "n_reuses": n_reuses,
        "factor_cache_ok": n_reuses > 0,
        "max_error_v_vs_4x_reference": round(max_error, 6),
        "max_error_target_v": ADAPTIVE_MAX_ERROR_V,
        "accuracy_ok": max_error <= ADAPTIVE_MAX_ERROR_V,
    }


def bench_telemetry() -> dict:
    """Traced vs untraced campaign: the observability layer's cost.

    Also writes the trace artifacts the CI uploads: one fully traced
    campaign's JSONL (``BENCH_trace.jsonl``) and its rendered
    :class:`~repro.telemetry.RunReport` (``BENCH_report.md``) — the
    section's counters are read back from that same trace, so the
    numbers in BENCH_sim.json and the report artifacts cannot drift
    apart.
    """
    chain, oracles, defects = _campaign_bench()

    def run_disabled():
        run_campaign(chain.circuit, defects, oracles)

    def run_enabled():
        run_campaign(chain.circuit, defects, oracles,
                     options=SimOptions(telemetry=Telemetry.capturing()))

    def measure_overhead_once(pairs: int = 15):
        """One A/B attempt: interleaved pairs, total-time ratio.

        Interleaving spreads slow clock drift (thermal throttling,
        noisy-neighbour CI hosts) over both variants; the explicit
        collect stops either variant from paying the GC bill for the
        other's garbage (the traced variant retains its event buffers
        until the next collection).
        """
        total_disabled = total_enabled = 0.0
        for _ in range(pairs):
            gc.collect()
            start = time.perf_counter()
            run_disabled()
            total_disabled += time.perf_counter() - start
            gc.collect()
            start = time.perf_counter()
            run_enabled()
            total_enabled += time.perf_counter() - start
        return total_disabled, total_enabled

    # The true cost of the layer is ~1% (one span per defect/analysis/
    # solve, none in per-iteration loops), but shared hosts drift by a
    # few percent over any measurement window, so a single attempt can
    # read several percent high or low.  Retry up to three times and
    # accept the first attempt under the gate: a *real* regression
    # (per-iteration spans, eager serialization) overshoots 3% on every
    # attempt, while measurement noise on a sub-gate overhead does not.
    run_disabled(), run_enabled()
    attempts = []
    for _ in range(3):
        disabled, enabled = measure_overhead_once()
        attempts.append(round((enabled / disabled - 1.0) * 100.0, 2))
        if attempts[-1] <= TELEMETRY_MAX_OVERHEAD_PCT:
            break
    overhead_pct = attempts[-1]

    if TRACE_OUTPUT.exists():
        TRACE_OUTPUT.unlink()
    telemetry = Telemetry.to_jsonl(str(TRACE_OUTPUT))
    run_campaign(chain.circuit, defects, oracles,
                 options=SimOptions(telemetry=telemetry))
    telemetry.close()
    report = RunReport.from_jsonl(str(TRACE_OUTPUT))
    REPORT_OUTPUT.write_text(report.render(markdown=True) + "\n")

    iterations = report.metrics.histogram("newton.iterations_per_solve")
    return {
        "defects": len(defects),
        "disabled_s": round(disabled / 15, 4),
        "enabled_s": round(enabled / 15, 4),
        "overhead_pct": overhead_pct,
        "overhead_attempts_pct": attempts,
        "max_overhead_pct": TELEMETRY_MAX_OVERHEAD_PCT,
        "overhead_ok": overhead_pct <= TELEMETRY_MAX_OVERHEAD_PCT,
        "spans": len(report.spans),
        "total_newton_iterations": report.total_newton_iterations(),
        "mean_nr_iterations_per_solve": round(iterations.mean, 2),
        "slowest_defect": report.slowest_defect_name(),
        "trace_artifact": TRACE_OUTPUT.name,
        "report_artifact": REPORT_OUTPUT.name,
    }


def bench_robustness() -> dict:
    """Guarded vs unguarded campaign: the fault-tolerance layer's cost.

    The guarded variant arms everything a production batch run would: a
    per-defect solver deadline (one clock check per Newton iteration)
    and JSONL checkpointing of every completed record.  Both variants
    solve the identical unperturbed catalog, so the overhead is pure
    bookkeeping.  Also writes the checkpoint artifact the CI uploads
    (``BENCH_checkpoint.jsonl``) and proves a resume from it is
    record-identical to the uninterrupted run.
    """
    from repro.faults import load_checkpoint

    chain, oracles, defects = _campaign_bench()
    guarded_options = SimOptions(solve_deadline_s=30.0)

    def scratch_checkpoint() -> pathlib.Path:
        path = REPO_ROOT / "BENCH_checkpoint.tmp.jsonl"
        if path.exists():
            path.unlink()
        return path

    def run_unguarded():
        run_campaign(chain.circuit, defects, oracles)

    def run_guarded():
        path = scratch_checkpoint()
        try:
            run_campaign(chain.circuit, defects, oracles,
                         options=guarded_options, checkpoint=str(path))
        finally:
            if path.exists():
                path.unlink()

    def measure_overhead_once(pairs: int = 10):
        """One A/B attempt: interleaved pairs, best-time ratio.

        Interleaving spreads slow clock drift over both variants (see
        :func:`bench_telemetry`); comparing the *minimum* per-variant
        time rather than totals additionally filters one-sided drift
        spikes (a noisy-neighbour stall lands in one variant's total
        and reads as overhead), while a genuine systematic cost — the
        deadline check, the per-record checkpoint write — shifts the
        minimum too.
        """
        best_unguarded = best_guarded = float("inf")
        for _ in range(pairs):
            gc.collect()
            start = time.perf_counter()
            run_unguarded()
            best_unguarded = min(best_unguarded,
                                 time.perf_counter() - start)
            gc.collect()
            start = time.perf_counter()
            run_guarded()
            best_guarded = min(best_guarded, time.perf_counter() - start)
        return best_unguarded, best_guarded

    # Same noise discipline as the telemetry gate: the true cost is one
    # perf_counter() read per Newton iteration plus one JSON line per
    # defect, so any attempt past 3% is host drift — retry up to three
    # times and accept the first attempt under the gate.
    run_unguarded(), run_guarded()
    attempts = []
    for _ in range(3):
        unguarded, guarded = measure_overhead_once()
        attempts.append(round((guarded / unguarded - 1.0) * 100.0, 2))
        if attempts[-1] <= ROBUSTNESS_MAX_OVERHEAD_PCT:
            break
    overhead_pct = attempts[-1]

    # The uploaded checkpoint artifact + the resume round-trip proof.
    if CHECKPOINT_OUTPUT.exists():
        CHECKPOINT_OUTPUT.unlink()
    reference = run_campaign(chain.circuit, defects, oracles,
                             options=guarded_options,
                             checkpoint=str(CHECKPOINT_OUTPUT))
    resumed = run_campaign(chain.circuit, defects, oracles,
                           options=guarded_options,
                           checkpoint=str(CHECKPOINT_OUTPUT), resume=True)
    plain = run_campaign(chain.circuit, defects, oracles)
    return {
        "defects": len(defects),
        "unguarded_s": round(unguarded, 4),
        "guarded_s": round(guarded, 4),
        "overhead_pct": overhead_pct,
        "overhead_attempts_pct": attempts,
        "max_overhead_pct": ROBUSTNESS_MAX_OVERHEAD_PCT,
        "overhead_ok": overhead_pct <= ROBUSTNESS_MAX_OVERHEAD_PCT,
        "checkpoint_records": len(load_checkpoint(str(CHECKPOINT_OUTPUT))),
        "n_resumed": resumed.n_resumed,
        "records_identical_after_resume":
            resumed.records == reference.records,
        "verdicts_identical": all(
            g.verdicts == p.verdicts and g.converged == p.converged
            for g, p in zip(reference.records, plain.records)),
        "n_quarantined": len(reference.quarantined()),
        "checkpoint_artifact": CHECKPOINT_OUTPUT.name,
    }


def bench_observability() -> dict:
    """The operational-observability layer, gated end to end.

    Five checks, every ``*_ok`` flag a CI gate:

    * the Chrome/Perfetto export round-trips every span of
      ``BENCH_trace.jsonl`` (written by :func:`bench_telemetry`, which
      therefore must run first) into ``BENCH_trace.perfetto.json``;
    * a traced *parallel* campaign's events all carry the root
      ``trace_id`` (cross-process trace-context propagation);
    * a profiler-enabled campaign stays within
      ``OBSERVABILITY_MAX_OVERHEAD_PCT`` of the traced-only run;
    * the profiled run's hotspot table is non-empty with self-times
      summing to at most the measured wall time;
    * a live TCP service's ``stats`` op returns a body that strictly
      parses as Prometheus text exposition, with the expected samples.
    """
    import asyncio

    from repro.telemetry import (aggregate_hotspots, chrome_trace_events,
                                 parse_prometheus, read_jsonl,
                                 write_chrome_trace)

    chain, oracles, defects = _campaign_bench()

    # 1. Perfetto export round-trip over the telemetry section's trace.
    events = read_jsonl(str(TRACE_OUTPUT))
    source_spans = [e for e in events if e.get("type") == "span"]
    exported = chrome_trace_events(events)
    roundtrip_ok = (
        len(exported) == len(source_spans)
        and sorted(e["name"] for e in exported)
        == sorted(s["name"] for s in source_spans)
        and all(e["ph"] == "X" and e["dur"] >= 0 for e in exported))
    write_chrome_trace(events, str(PERFETTO_OUTPUT))

    # 2. Cross-process trace propagation on a parallel traced campaign.
    telemetry = Telemetry.capturing()
    run_campaign(chain.circuit, defects, oracles, parallel=True,
                 options=SimOptions(telemetry=telemetry))
    telemetry.flush_metrics()
    root_trace = telemetry.tracer.trace_id
    traced_events = [e for e in telemetry.events()
                     if e.get("type") != "meta"]
    propagation_ok = (
        len(traced_events) > len(defects)
        and all(e.get("trace_id") == root_trace for e in traced_events)
        and len({e.get("pid") for e in traced_events
                 if e.get("type") == "span"}) >= 1)

    # 3. Profiler overhead: traced campaign with vs without the sampler,
    # interleaved pairs with the telemetry section's retry discipline.
    def run_traced():
        run_campaign(chain.circuit, defects, oracles,
                     options=SimOptions(telemetry=Telemetry.capturing()))

    def run_profiled():
        run_campaign(chain.circuit, defects, oracles,
                     options=SimOptions(
                         telemetry=Telemetry.capturing(), profile=True,
                         profile_interval_s=PROFILE_BENCH_INTERVAL_S))

    def measure_overhead_once(pairs: int = 10):
        best_traced = best_profiled = float("inf")
        for _ in range(pairs):
            gc.collect()
            start = time.perf_counter()
            run_traced()
            best_traced = min(best_traced, time.perf_counter() - start)
            gc.collect()
            start = time.perf_counter()
            run_profiled()
            best_profiled = min(best_profiled,
                                time.perf_counter() - start)
        return best_traced, best_profiled

    run_traced(), run_profiled()
    attempts = []
    for _ in range(3):
        traced_s, profiled_s = measure_overhead_once()
        attempts.append(round((profiled_s / traced_s - 1.0) * 100.0, 2))
        if attempts[-1] <= OBSERVABILITY_MAX_OVERHEAD_PCT:
            break
    overhead_pct = attempts[-1]

    # 4. Hotspot aggregation from one dedicated profiled run.
    profile_tel = Telemetry.capturing()
    start = time.perf_counter()
    run_campaign(chain.circuit, defects, oracles,
                 options=SimOptions(
                     telemetry=profile_tel, profile=True,
                     profile_interval_s=PROFILE_BENCH_INTERVAL_S))
    profiled_wall_s = time.perf_counter() - start
    profile_events = [e for e in profile_tel.events()
                      if e.get("type") == "profile"]
    hotspots = aggregate_hotspots(profile_events)
    self_total_s = sum(row["self_s"] for row in hotspots)
    hotspots_ok = (len(hotspots) > 0
                   and 0.0 < self_total_s <= profiled_wall_s)

    # 5. Live-service Prometheus scrape over the real TCP front end.
    async def scrape() -> dict:
        import tempfile

        from repro.service import CampaignService, JobSpec, \
            submit_and_stream
        with tempfile.TemporaryDirectory() as tmpdir:
            service = CampaignService(store=tmpdir, workers=2)
            server = await service.serve(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            spec = JobSpec(stages=2, kinds=("pipe",),
                           pipe_resistances=(4e3,), limit=4)
            await submit_and_stream(host, port, spec)
            reader, writer = await asyncio.open_connection(host, port)
            writer.write(b'{"op":"stats"}\n')
            await writer.drain()
            payload = json.loads(await reader.readline())
            writer.close()
            server.close()
            await server.wait_closed()
        return payload

    try:
        stats_payload = scrape_samples = None
        stats_payload = asyncio.run(scrape())
        scrape_samples = parse_prometheus(stats_payload["exposition"])
        scrape_ok = (
            scrape_samples.get("repro_service_jobs_submitted", 0) >= 1
            and scrape_samples.get("repro_service_jobs_completed", 0) >= 1
            and 'repro_service_job_wall_s{quantile="0.5"}' in scrape_samples
            and "repro_service_job_wall_s_count" in scrape_samples)
    except (ValueError, KeyError, OSError):
        scrape_ok = False

    return {
        "spans_in_trace": len(source_spans),
        "spans_exported": len(exported),
        "export_roundtrip_ok": roundtrip_ok,
        "perfetto_artifact": PERFETTO_OUTPUT.name,
        "parallel_events": len(traced_events),
        "trace_propagation_ok": propagation_ok,
        "profile_overhead_pct": overhead_pct,
        "profile_overhead_attempts_pct": attempts,
        "max_profile_overhead_pct": OBSERVABILITY_MAX_OVERHEAD_PCT,
        "profile_overhead_ok":
            overhead_pct <= OBSERVABILITY_MAX_OVERHEAD_PCT,
        "profile_samples": sum(e.get("n_samples", 0)
                               for e in profile_events),
        "hotspot_functions": len(hotspots),
        "hotspot_top": [row["function"] for row in hotspots[:3]],
        "hotspot_self_total_s": round(self_total_s, 4),
        "profiled_wall_s": round(profiled_wall_s, 4),
        "hotspots_ok": hotspots_ok,
        "prometheus_samples": len(scrape_samples or {}),
        "scrape_ok": scrape_ok,
    }


def bench_campaign_service() -> dict:
    """Cold sharded service run vs warm (fully cached) re-submission.

    The workload is the paper's full section-3 catalog with the
    monitor's own devices included (145 defects on the 3-stage chain):
    the DFT-flow shape where every defect is swept repeatedly across
    CLI runs, verify sweeps, and nightly fuzz — exactly what the
    content-addressed store exists to deduplicate.
    """
    import asyncio
    import tempfile

    from repro.parallel import default_workers
    from repro.service import CampaignService, JobSpec, run_load_test

    workers = default_workers()
    spec = JobSpec(stages=3,
                   kinds=("pipe", "terminal-short", "resistor-short",
                          "resistor-open"),
                   pipe_resistances=(2e3, 4e3),
                   include_monitor_sites=True,
                   parallel=True, workers=workers)

    # Serial reference: the same workload solved inline, no service, no
    # store — both the efficiency baseline and the record-identity
    # ground truth for cache-served results.
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [LogicOracle(chain.output_nets),
               FlagOracle(monitor.nets.flag, monitor.nets.flagb),
               IddqOracle()]
    defects = list(enumerate_defects(
        chain.circuit, kinds=tuple(spec.kinds),
        pipe_resistances=tuple(spec.pipe_resistances)))
    serial_result = run_campaign(chain.circuit, defects, oracles)
    serial_s = _best_of(lambda: run_campaign(chain.circuit, defects,
                                             oracles))

    async def run_service(tmpdir: str) -> dict:
        service = CampaignService(store=tmpdir, workers=workers)
        # Cold: timed once — it is the run that populates the store.
        start = time.perf_counter()
        cold = await service.run(spec)
        cold_s = time.perf_counter() - start
        # Warm: every record served from cache.  Best-of like the other
        # sections; re-runs only get *more* cached, never less.
        warm = None
        warm_s = float("inf")
        for _ in range(3):
            start = time.perf_counter()
            warm = await service.run(spec)
            warm_s = min(warm_s, time.perf_counter() - start)
        # Load test: concurrent TCP clients re-submitting the (now
        # cached) job against the live service.
        server = await service.serve(port=0)
        host, port = server.sockets[0].getsockname()[:2]
        load = await run_load_test(host, port, [spec.to_dict()] * 4)
        server.close()
        await server.wait_closed()
        lookups = warm.n_store_hits + warm.n_store_misses
        return {
            "cold_s": cold_s, "warm_s": warm_s,
            "cold": cold, "warm": warm,
            "hit_rate": warm.n_store_hits / lookups if lookups else 0.0,
            "load": load,
            "max_queue_depth": service.max_queue_depth,
        }

    with tempfile.TemporaryDirectory() as tmpdir:
        outcome = asyncio.run(run_service(tmpdir))

    cold, warm = outcome["cold"], outcome["warm"]
    efficiency = serial_s / (workers * outcome["cold_s"])
    load = outcome["load"]
    return {
        "defects": len(warm.records),
        "workers": workers,
        "serial_s": round(serial_s, 4),
        "cold_s": round(outcome["cold_s"], 4),
        "warm_s": round(outcome["warm_s"], 4),
        "speedup": round(outcome["cold_s"] / outcome["warm_s"], 2),
        "target_speedup": CAMPAIGN_SERVICE_TARGET,
        "cache_hit_rate": round(outcome["hit_rate"], 4),
        "min_cache_hit_rate": SERVICE_MIN_HIT_RATE,
        "cache_hit_ok": outcome["hit_rate"] >= SERVICE_MIN_HIT_RATE,
        "parallel_efficiency": round(efficiency, 3),
        "min_parallel_efficiency": SERVICE_MIN_EFFICIENCY,
        "efficiency_ok": efficiency >= SERVICE_MIN_EFFICIENCY,
        # Cache-served records must be field-identical to freshly solved
        # ones — against both the cold service run and the plain serial
        # campaign (dataclass equality covers every record field).
        "records_identical_ok": (warm.records == cold.records
                                 and warm.records == serial_result.records),
        "load_clients": load["clients"],
        "load_completed": load["completed"],
        "load_wall_s": load["wall_s"],
        "load_store_hits": load["total_store_hits"],
        "load_test_ok": (load["completed"] == load["clients"]
                         and load["failed"] == 0),
        "max_queue_depth": outcome["max_queue_depth"],
    }


def bench_testgen_atpg() -> dict:
    """Gate-level ATPG on the ISCAS-like benchmarks, gated four ways.

    * ``coverage_ok`` — strict stuck-at coverage (unclassified faults
      count as missed) at least ``ATPG_MIN_COVERAGE`` on the 500-gate
      network;
    * ``no_detectable_missed_ok`` — every fault the engine left
      unclassified is re-screened with ``ATPG_SCREEN_VECTORS``
      independent random vectors; none may be detectable (i.e. the
      engine only leaves behind redundant faults it could not prove
      untestable within budget);
    * ``runtime_ok`` — wall time per network under
      ``ATPG_MAX_RUNTIME_S``;
    * ``no_enumeration_ok`` — structural proof there is no 2^n path:
      at most one PODEM call per collapsed fault and the total applied
      vector count a vanishing fraction of the input space.

    Also writes ``BENCH_atpg_growth.json``: the cumulative per-vector
    fault-coverage curve for each combinational benchmark and the
    toggle-coverage growth of a sequential test plan.
    """
    import random as _random
    from collections import Counter

    from repro.testgen import (BENCHMARKS, enumerate_stuck_faults,
                               fault_detect_matrix, generate_tests,
                               sequential_test_plan)

    def fault_coverage_growth(network, vectors) -> list:
        """Cumulative detected-fraction after each vector, in order."""
        masks = fault_detect_matrix(network, vectors)
        first = Counter((mask & -mask).bit_length() - 1
                        for mask in masks.values() if mask)
        growth, detected = [], 0
        for k in range(len(vectors)):
            detected += first.get(k, 0)
            growth.append(round(detected / len(masks), 4))
        return growth

    sections = {}
    growth_artifact = {}
    coverage_ok = runtime_ok = no_detectable_missed_ok = True
    no_enumeration_ok = True
    for name in ("iscas_like_s1", "iscas_like_s2"):
        network = BENCHMARKS[name]()
        gc.collect()
        start = time.perf_counter()
        run = generate_tests(network)
        wall_s = time.perf_counter() - start

        # Re-screen the unclassified remainder with a fresh, much
        # larger random batch than anything the engine itself applied.
        rng = _random.Random(0xA7B6)
        screen = [{pi: bool(rng.getrandbits(1))
                   for pi in network.primary_inputs}
                  for _ in range(ATPG_SCREEN_VECTORS)]
        detectable_missed = 0
        if run.missed:
            caught = fault_detect_matrix(network, screen,
                                         faults=run.missed)
            detectable_missed = sum(1 for mask in caught.values()
                                    if mask)

        n_inputs = len(network.primary_inputs)
        applied = len(run.vectors) + len(run.results)
        enumeration_free = (run.stats.podem_calls <= run.n_collapsed
                            and applied < 2 ** 12 < 2 ** n_inputs)

        runtime_ok &= wall_s <= ATPG_MAX_RUNTIME_S[name]
        no_detectable_missed_ok &= detectable_missed == 0
        no_enumeration_ok &= enumeration_free
        sections[name] = {
            "gates": len(network.gates),
            "inputs": n_inputs,
            "faults": run.n_faults,
            "collapsed": run.n_collapsed,
            "vectors": len(run.vectors),
            "coverage": round(run.coverage, 4),
            "fault_efficiency": round(run.efficiency, 4),
            "proven_untestable": len(run.proven_untestable),
            "unclassified": len(run.missed),
            "detectable_missed": detectable_missed,
            "podem_calls": run.stats.podem_calls,
            "backtracks": run.stats.backtracks,
            "wall_s": round(wall_s, 4),
            "max_wall_s": ATPG_MAX_RUNTIME_S[name],
        }
        growth_artifact[name] = fault_coverage_growth(network,
                                                      run.vectors)
    coverage_ok = (sections["iscas_like_s1"]["coverage"]
                   >= ATPG_MIN_COVERAGE)

    # Sequential recipe: toggle-coverage growth of the section-6.6 plan
    # (pseudorandom init from all-0, LFSR patterns, ATPG top-up).
    seq = BENCHMARKS["decider"]()
    plan = sequential_test_plan(seq, initial_state=False)
    growth_artifact["sequential_decider"] = {
        "toggle_growth": [round(g, 4) for g in plan.growth],
        "coverage": round(plan.coverage.coverage, 4),
        "init_cycles": plan.init_cycles,
        "vectors": len(plan.vectors),
    }
    ATPG_GROWTH_OUTPUT.write_text(
        json.dumps(growth_artifact, indent=2) + "\n")

    # Sanity anchor: the full fault universe of the bigger network —
    # confirms the matrices above covered the real list, not a sample.
    n_universe = len(enumerate_stuck_faults(BENCHMARKS["iscas_like_s2"]()))

    return {
        **sections,
        "fault_universe_s2": n_universe,
        "min_coverage": ATPG_MIN_COVERAGE,
        "coverage_ok": coverage_ok,
        "screen_vectors": ATPG_SCREEN_VECTORS,
        "no_detectable_missed_ok": no_detectable_missed_ok,
        "runtime_ok": runtime_ok,
        "no_enumeration_ok": no_enumeration_ok,
        "sequential_toggle_coverage":
            growth_artifact["sequential_decider"]["coverage"],
        "sequential_coverage_ok":
            growth_artifact["sequential_decider"]["coverage"] >= 0.99,
        "growth_artifact": ATPG_GROWTH_OUTPUT.name,
    }


def bench_defect_families() -> dict:
    """Detectability gates for the extension defect families.

    * ``monotone_ok`` — oxide-breakdown detection coverage is monotone
      non-decreasing in severity for every detector variant (the
      severity-sweep artifact, ``BENCH_defect_families.json``);
    * ``delta_identity_ok`` / ``batched_identity_ok`` — campaign
      verdicts on `OxideBreakdown` + `WireLeak` defects under the
      low-rank delta and batched engines match the cold conventional
      solves vector-for-vector;
    * ``witnesses_ok`` — the three committed corpus witnesses (soft
      breakdown escape, low-swing healing, ILA C-testability) replay
      with zero cross-engine disagreements.
    """
    from repro.analysis import ila_c_testability_study, severity_sweep
    from repro.cml.interconnect import attach_low_swing_link
    from repro.faults import defect_key
    from repro.verify import (ENGINES_BY_NAME, cross_check,
                              load_scenario)

    sweep = severity_sweep(n_stages=3)

    # Verdict identity: cold vs delta vs batched on a linked chain with
    # both new families injected.
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    link = attach_low_swing_link(chain.circuit, *chain.output_nets[-1],
                                 swing_factor=0.5)
    oracles = lambda: [LogicOracle(chain.output_nets + [link.out_nets]),
                       IddqOracle()]
    defects = list(enumerate_defects(
        chain.circuit, kinds=("oxide-breakdown", "wire-leak"),
        oxide_resistances=(1e3, 1e5, 10e6),
        wire_leak_resistances=(2e3, 20e3)))
    cold = run_campaign(chain.circuit, defects, oracles(),
                        warm_start=False)
    delta = run_campaign(chain.circuit, defects, oracles(), delta=True)
    batched = run_campaign(chain.circuit, defects, oracles(),
                           batched=True)

    def table(campaign):
        return {defect_key(r.defect): (tuple(sorted(r.verdicts.items())),
                                       r.converged)
                for r in campaign.records}

    delta_identity = table(delta) == table(cold)
    batched_identity = table(batched) == table(cold)

    # Corpus witnesses, serial engine subset (same set CI replays).
    engines = [ENGINES_BY_NAME[name] for name in
               ("compiled-dense", "legacy-dense", "compiled-sparse",
                "compiled-delta", "compiled-batched")]
    witnesses = {}
    witnesses_ok = True
    for path in FAMILY_WITNESSES:
        result = cross_check(load_scenario(path), engines)
        witnesses[path.name] = {
            "ok": result.ok,
            "checks": result.n_checks,
            "disagreements": len(result.disagreements),
        }
        witnesses_ok &= result.ok

    ila = ila_c_testability_study(n_cells=4, campaign_limit=12)

    artifact = {
        "severity_sweep": sweep.to_dict(),
        "ila": {
            "n_cells": ila.n_cells,
            "n_vectors": ila.n_vectors,
            "stuck_coverage": ila.stuck_coverage,
            "c_testable": ila.c_testable,
        },
        "witnesses": witnesses,
    }
    DEFECT_FAMILIES_OUTPUT.write_text(
        json.dumps(artifact, indent=2) + "\n")

    per_family = cold.coverage_matrix(by="family")
    return {
        "sites": sweep.n_sites,
        "severities": list(sweep.resistances),
        "detection_fractions": {str(v): sweep.fraction(v)
                                for v in sweep.variants},
        "monotone_ok": sweep.monotone_ok(),
        "campaign_defects": len(defects),
        "per_family_any": {family: row["any"]
                           for family, row in per_family.items()},
        "delta_identity_ok": delta_identity,
        "batched_identity_ok": batched_identity,
        "witnesses": witnesses,
        "witnesses_ok": witnesses_ok,
        "ila_c_testable_ok": ila.c_testable,
        "artifact": DEFECT_FAMILIES_OUTPUT.name,
    }


def main() -> int:
    results = {
        "description": (
            "Simulation-core performance: compiled vectorised stamping, "
            "warm-started fault campaigns, LTE-controlled adaptive "
            "transient stepping and low-rank (Woodbury/replay) fault-delta "
            "solves.  Each section reports baseline vs optimized wall "
            "time, measured best-of-N in one process."),
        "campaign": bench_campaign(),
        "campaign_delta": bench_campaign_delta(),
        "campaign_batched": bench_campaign_batched(),
        "transient": bench_transient(),
        "transient_adaptive": bench_transient_adaptive(),
        "telemetry": bench_telemetry(),
        "robustness": bench_robustness(),
        "campaign_service": bench_campaign_service(),
        # Depends on bench_telemetry's BENCH_trace.jsonl artifact.
        "observability": bench_observability(),
        "testgen_atpg": bench_testgen_atpg(),
        "defect_families": bench_defect_families(),
    }
    ok = True
    for name, section in results.items():
        if not isinstance(section, dict):
            continue
        if ("speedup" in section
                and section["speedup"] < section["target_speedup"]):
            ok = False
        # Every boolean "*_ok" flag a section reports is a gate
        # (accuracy_ok, factor_cache_ok, overhead_ok, cache_hit_ok,
        # efficiency_ok, records_identical_ok, load_test_ok, ...).
        for key, value in section.items():
            if key.endswith("_ok") and value is False:
                ok = False
        if section.get("verdicts_identical") is False:
            ok = False
        if section.get("records_identical_after_resume") is False:
            ok = False
    results["targets_met"] = ok
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\n[written to {OUTPUT}]")
    return 0 if results["targets_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
