"""Performance harness: compiled engine + warm-started campaigns.

Times the two workloads the tentpole optimisation targets and writes
``BENCH_sim.json`` at the repository root so future changes have a perf
trajectory to compare against:

* **campaign** — the section-3 defect catalog (4 defect kinds, 2 pipe
  values) against the three-oracle setup on a 3-stage chain with a
  shared detector.  Baseline: legacy per-component stamping, cold
  starts.  Optimized: compiled stamping + fault-free warm starts.
* **transient** — an 8-stage buffer chain driven at 1 GHz for 2 ns.
  Baseline: legacy stamping.  Optimized: compiled stamping with the
  cached companion pattern.

Both baseline and optimized run in this same process (same BLAS, same
interpreter), so the reported speedups are apples-to-apples.  Run with::

    PYTHONPATH=src python benchmarks/perf/run_perf.py

See docs/performance.md for what the numbers mean and how to read them.
"""

from __future__ import annotations

import json
import pathlib
import time

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    FlagOracle,
    IddqOracle,
    LogicOracle,
    enumerate_defects,
    run_campaign,
)
from repro.sim.options import SimOptions
from repro.sim.transient import transient

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_sim.json"

#: Acceptance targets for this optimisation pass.
CAMPAIGN_TARGET = 3.0
TRANSIENT_TARGET = 2.0


def _best_of(func, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs (after one warmup)."""
    func()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def bench_campaign() -> dict:
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(
        chain.circuit,
        kinds=("pipe", "terminal-short", "resistor-short", "resistor-open"),
        pipe_resistances=(2e3, 4e3)))

    legacy = SimOptions(use_compiled=False)
    baseline = _best_of(lambda: run_campaign(
        chain.circuit, defects, oracles, options=legacy, warm_start=False))
    optimized = _best_of(lambda: run_campaign(chain.circuit, defects, oracles))

    warm = run_campaign(chain.circuit, defects, oracles)
    cold = run_campaign(chain.circuit, defects, oracles, warm_start=False)
    converged = [r for r in warm.records if r.converged]
    return {
        "defects": len(defects),
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": CAMPAIGN_TARGET,
        "mean_nr_iterations_warm": round(
            sum(r.newton_iterations for r in converged) / len(converged), 2),
        "mean_nr_iterations_cold": round(
            sum(r.newton_iterations for r in cold.records if r.converged)
            / len(converged), 2),
    }


def bench_transient() -> dict:
    chain = buffer_chain(NOMINAL, n_stages=8, frequency=1e9)
    circuit = chain.circuit
    t_stop, dt = 2e-9, 2e-12

    baseline = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions(use_compiled=False)), repeats=2)
    optimized = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions()), repeats=2)
    return {
        "n_stages": 8,
        "t_stop_s": t_stop,
        "dt_s": dt,
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": TRANSIENT_TARGET,
    }


def main() -> int:
    results = {
        "description": (
            "Simulation-core performance: baseline = legacy per-component "
            "stamping (use_compiled=False, cold starts); optimized = "
            "compiled vectorised stamping, cached sparsity patterns and "
            "warm-started fault campaigns.  Both measured in one process."),
        "campaign": bench_campaign(),
        "transient": bench_transient(),
    }
    results["targets_met"] = (
        results["campaign"]["speedup"] >= CAMPAIGN_TARGET
        and results["transient"]["speedup"] >= TRANSIENT_TARGET)
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\n[written to {OUTPUT}]")
    return 0 if results["targets_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
