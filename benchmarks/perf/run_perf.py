"""Performance harness: compiled engine, adaptive stepping, delta solves.

Times the workloads the performance work targets and writes
``BENCH_sim.json`` at the repository root so future changes have a perf
trajectory to compare against:

* **campaign** — the section-3 defect catalog (4 defect kinds, 2 pipe
  values) against the three-oracle setup on a 3-stage chain with a
  shared detector.  Baseline: legacy per-component stamping, cold
  starts.  Optimized: compiled stamping + fault-free warm starts.
* **campaign_delta** — the same catalog, warm-started compiled campaign
  as the baseline, against the low-rank fault-delta path (shared
  fault-free factorization, no per-defect injection/compilation).  The
  section also records that both campaigns return identical verdicts.
* **transient** — an 8-stage buffer chain driven at 1 GHz for 2 ns.
  Baseline: legacy stamping.  Optimized: compiled stamping with the
  cached companion pattern.
* **transient_adaptive** — the same chain, compiled fixed-step as the
  baseline, against the LTE-controlled adaptive stepper; accuracy is
  pinned against a 4x-oversampled fixed-step reference.

Both baseline and optimized run in this same process (same BLAS, same
interpreter), so the reported speedups are apples-to-apples.  Run with::

    PYTHONPATH=src python benchmarks/perf/run_perf.py

See docs/performance.md for what the numbers mean and how to read them.
"""

from __future__ import annotations

import json
import pathlib
import time

import numpy as np

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    FlagOracle,
    IddqOracle,
    LogicOracle,
    enumerate_defects,
    run_campaign,
)
from repro.sim.options import SimOptions
from repro.sim.transient import transient

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]
OUTPUT = REPO_ROOT / "BENCH_sim.json"

#: Acceptance targets for the optimisation passes.
CAMPAIGN_TARGET = 3.0
CAMPAIGN_DELTA_TARGET = 1.5
TRANSIENT_TARGET = 2.0
TRANSIENT_ADAPTIVE_TARGET = 2.0
#: Whole-trace accuracy bound for the adaptive stepper, volts.
ADAPTIVE_MAX_ERROR_V = 1e-3


def _best_of(func, repeats: int = 3) -> float:
    """Best wall-clock of ``repeats`` runs (after one warmup)."""
    func()
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _campaign_bench():
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(
        chain.circuit,
        kinds=("pipe", "terminal-short", "resistor-short", "resistor-open"),
        pipe_resistances=(2e3, 4e3)))
    return chain, oracles, defects


def bench_campaign() -> dict:
    chain, oracles, defects = _campaign_bench()

    legacy = SimOptions(use_compiled=False)
    baseline = _best_of(lambda: run_campaign(
        chain.circuit, defects, oracles, options=legacy, warm_start=False))
    optimized = _best_of(lambda: run_campaign(chain.circuit, defects, oracles))

    warm = run_campaign(chain.circuit, defects, oracles)
    cold = run_campaign(chain.circuit, defects, oracles, warm_start=False)
    converged = [r for r in warm.records if r.converged]
    return {
        "defects": len(defects),
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": CAMPAIGN_TARGET,
        "mean_nr_iterations_warm": round(
            sum(r.newton_iterations for r in converged) / len(converged), 2),
        "mean_nr_iterations_cold": round(
            sum(r.newton_iterations for r in cold.records if r.converged)
            / len(converged), 2),
    }


def bench_campaign_delta() -> dict:
    """Warm-started campaign vs the low-rank fault-delta path."""
    chain, oracles, defects = _campaign_bench()

    baseline = _best_of(lambda: run_campaign(chain.circuit, defects, oracles))
    optimized = _best_of(lambda: run_campaign(
        chain.circuit, defects, oracles, delta=True))

    warm = run_campaign(chain.circuit, defects, oracles)
    delta = run_campaign(chain.circuit, defects, oracles, delta=True)
    identical = all(
        w.verdicts == d.verdicts and w.converged == d.converged
        for w, d in zip(warm.records, delta.records))
    return {
        "defects": len(defects),
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": CAMPAIGN_DELTA_TARGET,
        "verdicts_identical": identical,
        "solver_counts": delta.solver_counts(),
        "woodbury_fallbacks": delta.woodbury_fallbacks,
        "n_factorizations": sum(r.n_factorizations for r in delta.records),
        "n_factorizations_baseline": sum(
            r.n_factorizations for r in warm.records),
    }


def bench_transient() -> dict:
    chain = buffer_chain(NOMINAL, n_stages=8, frequency=1e9)
    circuit = chain.circuit
    t_stop, dt = 2e-9, 2e-12

    baseline = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions(use_compiled=False)), repeats=2)
    optimized = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions()), repeats=2)
    return {
        "n_stages": 8,
        "t_stop_s": t_stop,
        "dt_s": dt,
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": TRANSIENT_TARGET,
    }


def bench_transient_adaptive() -> dict:
    """Compiled fixed-step vs the LTE-controlled adaptive stepper.

    Accuracy is measured at the adaptive stepper's own time points
    against a 4x-oversampled fixed-step reference (linear interpolation
    of the dense reference trace), over every node of the chain.
    """
    chain = buffer_chain(NOMINAL, n_stages=8, frequency=1e9)
    circuit = chain.circuit
    t_stop, dt = 2e-9, 2e-12

    baseline = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions()), repeats=2)
    optimized = _best_of(lambda: transient(
        circuit, t_stop, dt, SimOptions(adaptive_step=True)), repeats=2)

    adaptive = transient(circuit, t_stop, dt, SimOptions(adaptive_step=True))
    reference = transient(circuit, t_stop, dt / 4, SimOptions())
    t_ad = np.asarray(adaptive.times)
    t_ref = np.asarray(reference.times)
    max_error = 0.0
    for net in adaptive.structure.net_index:
        v_ad = np.asarray(adaptive.wave(net).values)
        v_ref = np.interp(t_ad, t_ref, np.asarray(reference.wave(net).values))
        max_error = max(max_error, float(np.max(np.abs(v_ad - v_ref))))

    fixed = transient(circuit, t_stop, dt, SimOptions())
    stats = adaptive.stats
    return {
        "n_stages": 8,
        "t_stop_s": t_stop,
        "dt_s": dt,
        "baseline_s": round(baseline, 4),
        "optimized_s": round(optimized, 4),
        "speedup": round(baseline / optimized, 2),
        "target_speedup": TRANSIENT_ADAPTIVE_TARGET,
        "timepoints_fixed": len(fixed.times),
        "timepoints_adaptive": len(adaptive.times),
        "rejected_steps": stats.n_rejected_steps if stats else None,
        "n_factorizations": stats.n_factorizations if stats else None,
        "n_reuses": stats.n_reuses if stats else None,
        "max_error_v_vs_4x_reference": round(max_error, 6),
        "max_error_target_v": ADAPTIVE_MAX_ERROR_V,
        "accuracy_ok": max_error <= ADAPTIVE_MAX_ERROR_V,
    }


def main() -> int:
    results = {
        "description": (
            "Simulation-core performance: compiled vectorised stamping, "
            "warm-started fault campaigns, LTE-controlled adaptive "
            "transient stepping and low-rank (Woodbury/replay) fault-delta "
            "solves.  Each section reports baseline vs optimized wall "
            "time, measured best-of-N in one process."),
        "campaign": bench_campaign(),
        "campaign_delta": bench_campaign_delta(),
        "transient": bench_transient(),
        "transient_adaptive": bench_transient_adaptive(),
    }
    ok = True
    for name, section in results.items():
        if not isinstance(section, dict) or "speedup" not in section:
            continue
        if section["speedup"] < section["target_speedup"]:
            ok = False
        if section.get("accuracy_ok") is False:
            ok = False
        if section.get("verdicts_identical") is False:
            ok = False
    results["targets_met"] = ok
    OUTPUT.write_text(json.dumps(results, indent=2) + "\n")
    print(json.dumps(results, indent=2))
    print(f"\n[written to {OUTPUT}]")
    return 0 if results["targets_met"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
