"""Fig. 2 — a collector-emitter short on Q2 maps into output stuck-at-0.

Regenerates the Fig. 2 waveform readout: the faulty output ``opf`` is
pinned at the logic-low level while the input toggles at 100 MHz.
"""

from conftest import record, run_once

from repro.analysis import fig2_stuck_at
from repro.cml import NOMINAL


def test_fig2_stuck_at(benchmark):
    result = run_once(benchmark, fig2_stuck_at)
    record("fig2", result.format())

    # Paper claim: the defect maps into a clean stuck-at-0.
    assert result.stuck_at_zero
    # op is frozen at the low level; opb still sits at a legal level.
    assert result.op_swing < 0.1 * NOMINAL.swing
    assert result.op_levels[1] < NOMINAL.vlow + 0.05
    assert result.opb_levels[0] > NOMINAL.vlow - 0.05
