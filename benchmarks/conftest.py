"""Shared helpers for the per-table/figure benchmarks.

Each bench runs its experiment exactly once (``benchmark.pedantic`` with
one round — these are minutes-scale analog simulations, not microbenches),
asserts the paper's qualitative claims and records the formatted table
into ``benchmarks/results/<name>.txt`` so the regenerated rows/series are
inspectable after the run.
"""

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def record(name: str, text: str) -> None:
    """Persist one experiment's formatted output (and echo it)."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n{text}\n[recorded to {path}]")


def run_once(benchmark, func, *args, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
