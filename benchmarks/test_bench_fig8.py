"""Fig. 8 — variant-1 tstability vs frequency, pipe value and load cap.

Regenerates the Fig. 8 series (reduced grid; EXPERIMENTS.md documents the
full sweep).  Claims checked: tstability increases with frequency, larger
load capacitors respond more slowly, and amplitudes below the variant-1
threshold (~0.6 V differential, e.g. a 5 kΩ pipe) escape.
"""

from conftest import record, run_once

from repro.analysis import fig8_variant1_sweep

PIPES = (1e3, 2e3)
FREQUENCIES = (100e6, 500e6)
CAPS = (1e-12, 10e-12)


def test_fig8_variant1_sweep(benchmark):
    result = run_once(benchmark, fig8_variant1_sweep,
                      pipe_values=PIPES, frequencies=FREQUENCIES,
                      load_caps=CAPS)
    record("fig8", result.format())

    # tstability grows with frequency (1 kΩ pipe, 1 pF load).
    series = result.series("t_stability", pipe=1e3, load_cap=1e-12)
    times = [t for _, t in series if t is not None]
    assert len(times) == len(series)
    assert times == sorted(times) and times[-1] > times[0]

    # The larger load capacitor is slower (or does not settle at all).
    fast = dict(result.series("t_stability", pipe=1e3, load_cap=1e-12))
    slow = dict(result.series("t_stability", pipe=1e3, load_cap=10e-12))
    f0 = FREQUENCIES[0]
    assert slow[f0] is None or slow[f0] > fast[f0]

    # Severity ordering: the milder pipe detects later (if at all).
    mild = dict(result.series("t_stability", pipe=2e3, load_cap=1e-12))
    assert mild[f0] is None or mild[f0] > fast[f0]
