"""Section 6.6 — testing approach: random patterns, toggle coverage,
pseudorandom initialization (ref [13]) and DC fault coverage.

Regenerates the methodology studies of the paper's testing section plus
the extension coverage sweep over the section-3 defect catalog.
"""

from conftest import record, run_once

from repro.analysis import dc_fault_coverage, section66_toggle_study


def test_sequential_toggle_study(benchmark):
    result = run_once(benchmark, section66_toggle_study,
                      benchmark_name="decider", n_vectors=128)
    record("toggle_decider", result.format())

    # Paper: circuits "tend to converge to a deterministic state" under
    # random patterns, demonstrated with a short sequence.
    assert result.initialization_cycles is not None
    assert result.initialization_cycles < 32
    # Random patterns reach full toggle coverage quickly.
    assert result.final_coverage == 1.0
    assert result.vectors_to_full is not None


def test_dc_fault_coverage(benchmark):
    result = run_once(benchmark, dc_fault_coverage, n_stages=4,
                      kinds=("pipe", "resistor-short"),
                      pipe_resistances=(2e3, 4e3))
    record("dc_coverage", result.format())

    by_kind = result.by_kind()
    # Paper: current-source pipes are fully DC-detectable through the
    # detectors.  Pipes on Q3 are 1/3 of pipe sites; coverage reflects
    # at least those (pair-transistor pipes are weaker faults).
    detected, total = by_kind["pipe"]
    assert detected >= total // 3
    # Stuck-at-class defects (shorted collector resistor pins the output
    # *high*) do not trip the amplitude detectors: the method complements
    # logic testing rather than replacing it.
    r_detected, _ = by_kind["resistor-short"]
    assert r_detected == 0
