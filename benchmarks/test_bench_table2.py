"""Table 2 — delays at the *actual* crossing voltage.

Regenerates Table 2: when delay is measured where an output actually
crosses its complement, even the faulty gate shows only a modest
difference (paper: <= 13 % of a gate delay at the DUT, ~2 % at the end).
"""

from conftest import record, run_once

from repro.analysis import table2_delays


def test_table2_actual_crossing_delays(benchmark):
    result = run_once(benchmark, table2_delays)
    record("table2", result.format())

    stage_delay = result.nominal_stage_delay()
    assert 30e-12 < stage_delay < 70e-12

    # Paper: the DUT anomaly is modest at the actual crossing point
    # (theirs: 13 % of a gate delay; the fixed-crossing Table 1 anomaly
    # is an order of magnitude larger).
    assert result.max_delta_at_dut() < 0.3 * stage_delay
    # And negligible at the chain output.
    assert result.final_delta() < 0.1 * stage_delay
