"""Fig. 14 — load sharing: fault-free vout vs N, safe sharing bound.

Regenerates the Fig. 14 curve from DC operating points of N-buffer chains
sharing one monitor.  Claims checked: vout decreases linearly with N
(R0-dominated leakage), the safe sharing bound lands in the tens of gates
(paper: 45), and a faulty gate is still detected.
"""

from conftest import record, run_once

from repro.analysis import fig14_load_sharing

N_VALUES = (1, 5, 10, 20, 30, 45, 60)


def test_fig14_load_sharing(benchmark):
    result = run_once(benchmark, fig14_load_sharing, n_values=N_VALUES)
    record("fig14", result.format())

    # Fault-free vout declines monotonically over the PASS samples...
    pass_vout = [v for v, ok in zip(result.vout, result.flag_pass) if ok]
    assert all(a > b for a, b in zip(pass_vout, pass_vout[1:]))
    # ...with a roughly constant mV/gate slope (linear, R0-dominated).
    assert 0.3e-3 < result.slope_per_gate < 3e-3

    # Paper's criterion evaluates to 45; same order here.
    assert 25 < result.safe_n < 70

    # Sharing never masks a real fault: the faulty single-gate monitor
    # rests far below the detection band.
    assert result.faulty_vout_n1 is not None
    assert result.faulty_vout_n1 < result.release_threshold - 0.02
