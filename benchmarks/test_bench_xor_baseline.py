"""Prior-art comparison — Menon's XOR observer [4] vs the paper's detector.

Regenerates the introduction's argument as a head-to-head defect matrix:
the XOR observer catches complementarity (like) faults but is blind to
amplitude faults; the paper's amplitude detector covers the gap at a
fraction of the area.
"""

from conftest import record, run_once

from repro.analysis.reporting import format_table
from repro.cml import NOMINAL, buffer_chain, transistor_count, xor2_cell
from repro.dft import (
    attach_xor_observer,
    build_shared_monitor,
    observer_verdict,
)
from repro.faults import Bridge, Pipe, inject
from repro.sim import operating_point

TECH = NOMINAL


def head_to_head():
    cases = [
        ("fault-free", None),
        ("2k pipe on DUT.Q3", Pipe("DUT.Q3", 2e3)),
        ("4k pipe on DUT.Q3", Pipe("DUT.Q3", 4e3)),
        ("5k pipe on DUT.Q3", Pipe("DUT.Q3", 5e3)),
        ("op~opb bridge (like-fault)", Bridge("op", "opb", 1.0)),
    ]
    chain = buffer_chain(TECH, frequency=100e6)
    observer = attach_xor_observer(chain.circuit, "op", "opb", tech=TECH)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=TECH)
    rows = []
    for label, defect in cases:
        circuit = inject(chain.circuit, defect) if defect else chain.circuit
        op = operating_point(circuit)
        accessor = op.structure.voltages_from(op.x)
        xor_says = observer_verdict(accessor, observer, TECH)
        detector_says = ("FAULT" if op.voltage(monitor.nets.flag)
                         < op.voltage(monitor.nets.flagb) else "pass")
        rows.append([label, xor_says, detector_says])
    return rows, observer


def test_xor_observer_baseline(benchmark):
    rows, observer = run_once(benchmark, head_to_head)
    table = format_table(
        ["defect", "XOR observer [4]", "amplitude detector (paper)"],
        rows, title="Prior-art comparison on the Fig. 3 chain")
    record("xor_baseline", table)

    verdicts = {label: (xor, det) for label, xor, det in rows}
    # Both schemes pass the clean circuit.
    assert verdicts["fault-free"] == ("good", "pass")
    # Amplitude faults: observer blind, detector fires.
    for pipe in ("2k pipe on DUT.Q3", "4k pipe on DUT.Q3",
                 "5k pipe on DUT.Q3"):
        xor_says, detector_says = verdicts[pipe]
        assert xor_says == "good"
        assert detector_says == "FAULT"
    # Like-fault: the observer reacts (its design target).
    assert verdicts["op~opb bridge (like-fault)"][0] in ("weak", "fault")

    # Area: the observer spends a full XOR per gate (paper: "very high
    # area overhead"), an order more transistors than a shared detector
    # pair.
    assert observer.n_transistors >= transistor_count(xor2_cell(TECH))
