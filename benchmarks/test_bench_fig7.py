"""Fig. 7 — variant-1 detector response (1 kΩ pipe, 10 pF, 100 MHz).

Regenerates the Fig. 7 transient characterisation: the detector output
decays through a transient period and settles into a rippling stable
period, characterised by tstability and Vmax.
"""

from conftest import record, run_once

from repro.analysis import fig7_detector_response
from repro.cml import NOMINAL


def test_fig7_detector_response(benchmark):
    result = run_once(benchmark, fig7_detector_response,
                      pipe_resistance=1e3, load_cap=10e-12)
    record("fig7", result.format())

    # The 1 kΩ pipe is detected: vout leaves the fault-free band.
    assert result.detected
    assert result.v_min < NOMINAL.vgnd - 0.5

    # The response has the paper's two-phase shape: a stability time
    # within the window followed by a bounded ripple.
    assert result.t_stability is not None
    assert result.t_stability < 100e-9
    assert result.v_max is not None
    assert 0.0 < result.ripple < 0.3


def test_fig7_fault_free_reference(benchmark):
    result = run_once(benchmark, fig7_detector_response,
                      pipe_resistance=None, load_cap=10e-12, cycles=15)
    record("fig7_fault_free", result.format())
    # Fault-free: no detection event at all.
    assert not result.detected
    assert result.t_stability is None
