"""Table 1 — delays at the fixed nominal crossing voltage.

Regenerates the Table 1 rows: cumulative edge times at every chain tap
for the fault-free and 4 kΩ-piped chains, measured where the waveform
crosses the nominal mid level (the paper's 3.165 V; here ``tech.vmid``).
The pipe produces a large asymmetric anomaly at the DUT that vanishes at
the chain output — the fault is not observable by output delay testing.
"""

from conftest import record, run_once

from repro.analysis import table1_delays


def test_table1_fixed_crossing_delays(benchmark):
    result = run_once(benchmark, table1_delays)
    record("table1", result.format())

    stage_delay = result.nominal_stage_delay()
    # Calibration anchor: nominal stage delay in the tens of ps (paper 53).
    assert 30e-12 < stage_delay < 70e-12

    # Paper: ~58 ps anomaly at the DUT (about one full gate delay)...
    assert result.max_delta_at_dut() > 0.7 * stage_delay
    # ...healing to ~1 ps at the chain output.
    assert result.final_delta() < 0.1 * stage_delay

    # The anomaly is asymmetric: one output looks slower, the complement
    # looks *faster* (paper: +58 ps / -16 ps).
    dut = result.taps.index("op")
    deltas = (result.delta_op()[dut], result.delta_opb()[dut])
    assert max(deltas) > 0 and min(deltas) < 0
