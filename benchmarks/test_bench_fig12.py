"""Fig. 12 — comparator hysteresis from the positive feedback.

Regenerates the Fig. 12 characterisation: sweep a forced vout down and up
through the variant-3 comparator and read the guaranteed-detect /
guaranteed-pass thresholds (paper: 3.54 V and 3.57 V — a ~30 mV band).
"""

from conftest import record, run_once

from repro.analysis import fig12_hysteresis
from repro.cml import NOMINAL
from repro.dft import ComparatorConfig


def test_fig12_hysteresis(benchmark):
    result = run_once(benchmark, fig12_hysteresis)
    record("fig12", result.format())

    # A genuine hysteresis band of a few tens of mV below vtest.
    assert 0.01 < result.width < 0.08
    assert NOMINAL.vtest - 0.3 < result.detect_threshold \
        < result.release_threshold < NOMINAL.vtest

    # The flag output is restored to standard CML levels.
    low, high = result.flag_levels
    assert abs(high - NOMINAL.vhigh) < 0.05
    assert abs(low - NOMINAL.vlow) < 0.05


def test_fig12_feedback_ablation(benchmark):
    """Ablation: without the vfb positive feedback the comparator has no
    hysteresis — the feedback is what guarantees noise-immune verdicts."""
    result = run_once(benchmark, fig12_hysteresis,
                      config=ComparatorConfig(feedback=False))
    record("fig12_no_feedback", result.format())
    assert abs(result.width) < 0.012
