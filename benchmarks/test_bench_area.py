"""Section 6.5 — area overhead of the detector schemes.

Regenerates the area comparison behind the paper's "little overhead"
claim and the Fig. 15 dual-emitter optimization, against the prior-art
XOR-observer baseline [4].
"""

from conftest import record, run_once

from repro.analysis import section65_area


def test_area_overheads(benchmark):
    result = run_once(benchmark, section65_area, n_gates=100)
    record("area", result.format())

    table = result.relative_overhead
    # Paper ordering: shared variant 3 beats the per-gate XOR observer...
    assert table["variant3-shared"] < table["xor-observer"]
    # ...and the dual-emitter merge (Fig. 15) reduces it further.
    assert table["variant3-dual-emitter"] < table["variant3-shared"]
    # Headline: well under one buffer-equivalent per monitored gate.
    assert table["variant3-dual-emitter"] < 1.0
