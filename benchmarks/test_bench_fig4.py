"""Fig. 4 — 4 kΩ pipe on DUT.Q3: swing ~doubles locally, heals downstream.

Regenerates the Fig. 4 readout: per-stage swings and low levels for the
fault-free and faulty chains at 100 MHz.
"""

from conftest import record, run_once

from repro.analysis import fig4_healing


def test_fig4_healing(benchmark):
    result = run_once(benchmark, fig4_healing)
    record("fig4", result.format())

    # Paper: "the voltage swing has nearly doubled" at the faulty gate.
    assert 1.7 < result.dut_swing_ratio < 2.7
    # Paper: "after 4 logic gates, the degraded signal ... can be
    # completely restored" — healed at or before op6.
    healed = result.healed_by(tolerance=0.05)
    assert healed in ("op3", "op4", "op5", "op6")
    # The high level is unaffected (only the low excursion grows).
    dut = result.stage_names.index("op")
    assert result.faulty_vlow[dut] < result.ff_vlow[dut] - 0.2
