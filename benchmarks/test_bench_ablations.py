"""Ablations of the detector design choices (sections 6.1-6.4 knobs).

The paper fixes several design values after exploration — R0 = 40 kΩ,
vtest = 3.7 V, diode-capacitor load, large variant-1 detector device.
These benches sweep each knob and assert the orderings the paper's
choices rely on.
"""

from conftest import record, run_once

from repro.analysis import fig14_load_sharing
from repro.analysis.reporting import format_table
from repro.cml import NOMINAL, buffer_chain
from repro.dft import (
    ComparatorConfig,
    DetectorConfig,
    attach_variant1,
    attach_variant2,
    ensure_vtest,
)
from repro.dft import test_mode_entry as enter_test_mode  # avoid collection
from repro.faults import Pipe, inject
from repro.sim import run_cycles

TECH = NOMINAL


def _variant1_minimum(pipe, config, cycles=25):
    chain = buffer_chain(TECH, frequency=100e6)
    detector = attach_variant1(chain.circuit, "op", "opb", tech=TECH,
                               config=config)
    faulty = inject(chain.circuit, Pipe("DUT.Q3", pipe))
    result = run_cycles(faulty, 100e6, cycles=cycles, points_per_cycle=120,
                        cap_overrides={f"{detector.name}.C7": 0.0})
    return result.wave(detector.vout).minimum()


def _variant2_detect_time(pipe, vtest_level, cycles=20):
    chain = buffer_chain(TECH, frequency=100e6)
    ensure_vtest(chain.circuit, TECH,
                 enter_test_mode(TECH, level=vtest_level))
    detector = attach_variant2(chain.circuit, "op", "opb", tech=TECH,
                               config=DetectorConfig(load_cap=1e-12))
    faulty = inject(chain.circuit, Pipe("DUT.Q3", pipe))
    result = run_cycles(faulty, 100e6, cycles=cycles, points_per_cycle=120,
                        cap_overrides={f"{detector.name}.C7": 0.0})
    return result.wave(detector.vout).first_crossing(TECH.vgnd - 0.25,
                                                     "fall")


def test_r0_ablation(benchmark):
    """R0 trades fault-free margin against sharing slope: a larger R0
    drops more bias voltage (less margin) and amplifies the per-gate
    leakage (steeper vout(N)) — 40 kΩ is the paper's compromise."""
    def sweep():
        rows = []
        for r0 in (10e3, 40e3, 160e3):
            result = fig14_load_sharing(
                n_values=(1, 20),
                faulty_pipe=None,
                comparator_config=ComparatorConfig(r0=r0))
            rows.append([f"{r0/1e3:.0f}k", result.vout[0],
                         result.slope_per_gate * 1e3])
        return rows

    rows = run_once(benchmark, sweep)
    record("ablation_r0", format_table(
        ["R0", "vout(N=1) (V)", "slope (mV/gate)"], rows,
        title="Ablation — load resistor R0"))
    quiescent = [row[1] for row in rows]
    slopes = [row[2] for row in rows]
    assert quiescent[0] > quiescent[1] > quiescent[2]
    # Larger R0 = steeper leakage slope; at 160k the quiescent level has
    # already fallen out of the guaranteed-pass band (slope becomes NaN
    # because no second PASS sample exists) — the scheme is broken, which
    # is exactly why the paper settles on 40k.
    assert slopes[0] < slopes[1]
    assert slopes[2] != slopes[2] or slopes[2] > slopes[1]  # NaN or larger


def test_vtest_ablation(benchmark):
    """Raising vtest turns the variant-2 detectors on earlier: detection
    of a marginal (5 kΩ) pipe accelerates monotonically with vtest."""
    def sweep():
        rows = []
        for vtest in (3.55, 3.7, 3.85):
            t_detect = _variant2_detect_time(5e3, vtest)
            rows.append([vtest, None if t_detect is None
                         else t_detect * 1e9])
        return rows

    rows = run_once(benchmark, sweep)
    record("ablation_vtest", format_table(
        ["vtest (V)", "t_detect (ns)"], rows,
        title="Ablation — variant-2 test bias"))
    times = [row[1] for row in rows]
    assert times[2] is not None
    # Higher vtest is never slower; the lowest setting may miss entirely.
    defined = [t for t in times if t is not None]
    assert defined == sorted(defined, reverse=True)


def test_detector_area_ablation(benchmark):
    """The variant-1 threshold scales with the detector device area: a
    larger device pumps more charge at the same amplitude, detecting the
    3 kΩ pipe that a unit device misses."""
    def sweep():
        rows = []
        for area in (10.0, 100.0, 400.0):
            v_min = _variant1_minimum(
                3e3, DetectorConfig(load_cap=1e-12, detector_area=area))
            rows.append([area, v_min])
        return rows

    rows = run_once(benchmark, sweep)
    record("ablation_area", format_table(
        ["area (x unit)", "vout min (V)"], rows,
        title="Ablation — variant-1 detector device area"))
    minima = [row[1] for row in rows]
    assert minima[0] > minima[1] > minima[2]


def test_load_style_ablation(benchmark):
    """Paper: settling 'can be much longer with a resistor-capacitor load
    as compared with the diode-capacitor load' — and the resistor load
    sits lower at rest (it conducts at any voltage, the diode does not)."""
    def sweep():
        diode_min = _variant1_minimum(
            1e3, DetectorConfig(load="diode", load_cap=1e-12))
        resistor_min = _variant1_minimum(
            1e3, DetectorConfig(load="resistor", load_resistance=160e3,
                                load_cap=1e-12))
        return diode_min, resistor_min

    diode_min, resistor_min = run_once(benchmark, sweep)
    record("ablation_load", format_table(
        ["load", "vout min (V)"],
        [["diode + 1 pF", diode_min], ["160k + 1 pF", resistor_min]],
        title="Ablation — detector load style (1 kΩ pipe)"))
    # Both detect the severe fault.
    assert diode_min < TECH.vgnd - 0.4
    assert resistor_min < TECH.vgnd - 0.4
