"""Tests of the gate-level logic simulator and benchmark circuits."""

import itertools

import pytest

from repro.testgen import (
    LogicNetwork,
    full_adder,
    johnson_counter,
    mux_select_tree,
    parity_tree,
    ripple_adder,
    sequential_decider,
    shift_register,
)


class TestNetworkConstruction:
    def test_duplicate_gate_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("G", "buffer", ["a"], "x")
        with pytest.raises(ValueError, match="duplicate gate"):
            net.add_gate("G", "buffer", ["a"], "y")

    def test_double_driven_net_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("G1", "buffer", ["a"], "x")
        with pytest.raises(ValueError, match="already driven"):
            net.add_gate("G2", "inverter", ["a"], "x")

    def test_bad_cell_type_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(ValueError, match="unsupported"):
            net.add_gate("G", "nand17", ["a"], "x")

    def test_arity_checked(self):
        net = LogicNetwork()
        net.add_input("a")
        with pytest.raises(ValueError, match="takes 2 inputs"):
            net.add_gate("G", "and2", ["a"], "x")

    def test_combinational_cycle_detected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("G1", "and2", ["a", "y"], "x")
        net.add_gate("G2", "or2", ["x", "a"], "y")
        with pytest.raises(ValueError, match="cycle"):
            net.combinational_order()

    def test_feedback_through_dff_allowed(self):
        net = shift_register(2)
        assert net.validate() == []

    def test_undriven_input_warned(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("G", "and2", ["a", "ghost"], "x")
        assert any("ghost" in w for w in net.validate())


class TestCombinationalSimulation:
    @pytest.mark.parametrize("a,b,cin",
                             list(itertools.product([False, True], repeat=3)))
    def test_full_adder_truth_table(self, a, b, cin):
        net = full_adder()
        values = net.evaluate({"a": a, "b": b, "cin": cin})
        total = int(a) + int(b) + int(cin)
        assert values["sum"] == bool(total & 1)
        assert values["cout"] == bool(total >> 1)

    def test_ripple_adder_adds(self):
        net = ripple_adder(4)
        for a, b, cin in ((3, 5, 0), (15, 1, 0), (7, 8, 1), (0, 0, 1)):
            vector = {"cin": bool(cin)}
            for bit in range(4):
                vector[f"a{bit}"] = bool((a >> bit) & 1)
                vector[f"b{bit}"] = bool((b >> bit) & 1)
            values = net.evaluate(vector)
            total = a + b + cin
            result = sum(int(values[f"sum{bit}"]) << bit for bit in range(4))
            result += int(values["carry3"]) << 4
            assert result == total

    def test_parity_tree(self):
        net = parity_tree(8)
        for word in (0, 0b10110101, 0b11111111, 0b00000001):
            vector = {f"d{i}": bool((word >> i) & 1) for i in range(8)}
            values = net.evaluate(vector)
            assert values[net.primary_outputs[0]] == bool(
                bin(word).count("1") & 1)

    def test_mux4(self):
        net = mux_select_tree()
        data = {"d0": True, "d1": False, "d2": True, "d3": False}
        for select in range(4):
            vector = dict(data)
            vector["s0"] = bool(select & 1)
            vector["s1"] = bool(select >> 1)
            values = net.evaluate(vector)
            assert values["out"] == data[f"d{select}"]

    def test_unknown_input_rejected(self):
        net = full_adder()
        with pytest.raises(KeyError):
            net.evaluate({"a": True, "b": True, "zap": False})


class TestXPropagation:
    def test_and_false_dominates_x(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("G", "and2", ["a", "b"], "x")
        values = net.evaluate({"a": False, "b": None})
        assert values["x"] is False

    def test_or_true_dominates_x(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("G", "or2", ["a", "b"], "x")
        values = net.evaluate({"a": True, "b": None})
        assert values["x"] is True

    def test_xor_with_x_is_x(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("G", "xor2", ["a", "b"], "x")
        values = net.evaluate({"a": True, "b": None})
        assert values["x"] is None

    def test_mux_with_x_select_but_equal_data(self):
        net = LogicNetwork()
        for name in ("a", "b", "s"):
            net.add_input(name)
        net.add_gate("G", "mux2", ["a", "b", "s"], "x")
        values = net.evaluate({"a": True, "b": True, "s": None})
        assert values["x"] is True

    def test_missing_inputs_default_to_x(self):
        net = full_adder()
        values = net.evaluate({"a": True})
        assert values["sum"] is None


class TestSequentialSimulation:
    def test_shift_register_delays(self):
        net = shift_register(3)
        net.reset(False)
        stream = [True, False, True, True, False, False]
        outputs = [net.step({"sin": bit})["q2"] for bit in stream]
        # Output is the input delayed by 3 cycles (initially False).
        assert outputs == [False, False, False, True, False, True]

    def test_reset_to_x(self):
        net = shift_register(2)
        net.reset(None)
        values = net.step({"sin": True})
        assert values["q1"] is None

    def test_set_state_validates(self):
        net = sequential_decider()
        with pytest.raises(ValueError, match="not sequential"):
            net.set_state({"A1": True})

    def test_johnson_counter_cycles(self):
        net = johnson_counter(3)
        net.reset(False)
        seen = set()
        for _ in range(12):
            values = net.step({"en": True})
            seen.add(tuple(values[f"q{i}"] for i in range(3)))
        # A 3-stage Johnson counter visits 6 distinct states.
        assert len(seen) == 6

    def test_state_roundtrip(self):
        net = sequential_decider()
        net.set_state({"F0": True, "F1": False})
        assert net.state() == {"F0": True, "F1": False}
