"""Tests for operating-point reports and waveform CSV persistence."""

import numpy as np
import pytest

from repro.circuit import Circuit, Diode, Resistor, VoltageSource
from repro.cml import NOMINAL, buffer_chain
from repro.sim import (
    NewtonStats,
    bjt_region,
    load_waveforms_csv,
    op_report,
    operating_point,
    run_cycles,
    save_waveforms_csv,
    solver_stats_report,
    total_supply_power,
)

TECH = NOMINAL


class TestRegionClassification:
    def test_active(self):
        assert bjt_region({"vbe": 0.9, "vbc": -1.0}) == "active"

    def test_saturation(self):
        assert bjt_region({"vbe": 0.9, "vbc": 0.8}) == "saturation"

    def test_cutoff(self):
        assert bjt_region({"vbe": 0.2, "vbc": -2.0}) == "cutoff"

    def test_reverse(self):
        assert bjt_region({"vbe": -0.5, "vbc": 0.8}) == "reverse"


class TestOpReport:
    @pytest.fixture(scope="class")
    def chain_solution(self):
        chain = buffer_chain(TECH, n_stages=2)
        return chain, operating_point(chain.circuit)

    def test_report_lists_all_transistors(self, chain_solution):
        chain, solution = chain_solution
        report = op_report(chain.circuit, solution)
        for name in ("X1.Q1", "X1.Q2", "X1.Q3", "X2.Q3"):
            assert name in report

    def test_current_sources_read_active(self, chain_solution):
        chain, solution = chain_solution
        report = op_report(chain.circuit, solution)
        for line in report.splitlines():
            if ".Q3" in line:
                assert "active" in line

    def test_sources_section(self, chain_solution):
        chain, solution = chain_solution
        report = op_report(chain.circuit, solution)
        assert "VGND" in report
        assert "Sources" in report

    def test_passives_optional(self, chain_solution):
        chain, solution = chain_solution
        assert "X1.R1" not in op_report(chain.circuit, solution)
        assert "X1.R1" in op_report(chain.circuit, solution,
                                    include_passives=True)

    def test_diode_section(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "a", "0", 2.0))
        circuit.add(Resistor("R1", "a", "d", 1000))
        circuit.add(Diode("D1", "d", "0"))
        solution = operating_point(circuit)
        assert "D1" in op_report(circuit, solution)

    def test_total_supply_power(self, chain_solution):
        chain, solution = chain_solution
        power = total_supply_power(chain.circuit, solution)
        # Two buffers at ~0.5 mA each from 3.3 V plus bias leakage.
        assert 2e-3 < power < 6e-3


class TestWaveformCsv:
    def test_roundtrip(self, tmp_path):
        chain = buffer_chain(TECH, n_stages=2, frequency=100e6)
        result = run_cycles(chain.circuit, 100e6, cycles=1.0,
                            points_per_cycle=50)
        path = tmp_path / "waves.csv"
        save_waveforms_csv(str(path), result, ["op1", "op2"])
        loaded = load_waveforms_csv(str(path))
        assert set(loaded) == {"op1", "op2"}
        original = result.wave("op1")
        assert np.allclose(loaded["op1"].values, original.values)
        assert np.allclose(loaded["op1"].times, original.times)

    def test_loaded_waveform_measurable(self, tmp_path):
        chain = buffer_chain(TECH, n_stages=1, frequency=100e6)
        result = run_cycles(chain.circuit, 100e6, cycles=2.0,
                            points_per_cycle=100)
        path = tmp_path / "w.csv"
        save_waveforms_csv(str(path), result, ["op1"])
        wave = load_waveforms_csv(str(path))["op1"]
        assert wave.swing() == pytest.approx(TECH.swing, rel=0.1)

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1,2\n")
        with pytest.raises(ValueError):
            load_waveforms_csv(str(path))


class TestSolverStatsReport:
    def test_counters_always_shown(self):
        stats = NewtonStats(strategy="plain", iterations=7,
                            n_factorizations=2, n_reuses=5)
        line = solver_stats_report(stats)
        assert "strategy=plain" in line
        assert "iterations=7" in line
        assert "factorizations=2" in line
        assert "reuses=5" in line
        # zero-valued optional counters stay out of the line
        assert "rejected_steps" not in line
        assert "woodbury_fallbacks" not in line

    def test_optional_counters_appear_when_nonzero(self):
        stats = NewtonStats(strategy="gmin-stepping", gmin_steps=4,
                            n_rejected_steps=3, woodbury_fallbacks=1)
        line = solver_stats_report(stats)
        assert "rejected_steps=3" in line
        assert "woodbury_fallbacks=1" in line
        assert "gmin_steps=4" in line

    def test_real_solve_stats_render(self):
        chain = buffer_chain(TECH, n_stages=1)
        solution = operating_point(chain.circuit)
        line = solver_stats_report(solution.stats)
        assert "iterations=" in line
        assert "factorizations=" in line

    def test_empty_campaign_aggregate(self):
        """A campaign with zero records renders the all-zero baseline."""
        from repro.faults.campaign import CampaignResult

        line = solver_stats_report(CampaignResult().aggregate_stats())
        assert line == ("strategy=campaign iterations=0 factorizations=0 "
                        "reuses=0")

    def test_all_fallback_campaign_aggregate(self):
        """Every delta solve fell back: fallbacks equal the record count
        and both attempts' work shows up in the aggregate."""
        from repro.faults.campaign import CampaignResult, FaultRecord
        from repro.faults.defects import Pipe

        records = [FaultRecord(defect=Pipe("X1.Q1", 1e3), verdicts={},
                               solver="delta-fallback",
                               newton_iterations=11, n_factorizations=11)
                   for _ in range(3)]
        stats = CampaignResult(records=records).aggregate_stats()
        assert stats.woodbury_fallbacks == 3
        line = solver_stats_report(stats)
        assert "iterations=33" in line
        assert "woodbury_fallbacks=3" in line

    def test_transient_with_zero_rejected_steps(self):
        """A clean fixed-step transient never mentions rejected steps."""
        stats = NewtonStats(strategy="trapezoidal", iterations=42,
                            n_factorizations=1, n_reuses=41,
                            n_rejected_steps=0)
        line = solver_stats_report(stats)
        assert line == ("strategy=trapezoidal iterations=42 "
                        "factorizations=1 reuses=41")
