"""Transient-analysis tests against analytic RC/RL-free solutions."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Bjt,
    Capacitor,
    Circuit,
    Diode,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    VoltageSource,
)
from repro.sim import SimOptions, transient


def rc_circuit(r=1000.0, c=1e-9, waveform=None) -> Circuit:
    circuit = Circuit("rc")
    if waveform is None:
        waveform = Pulse(0.0, 1.0, delay=0.0, rise=1e-12, fall=1e-12,
                         width=1.0, period=0.0)
    circuit.add(VoltageSource("V1", "in", "0", waveform))
    circuit.add(Resistor("R1", "in", "out", r))
    circuit.add(Capacitor("C1", "out", "0", c))
    return circuit


class TestRcStep:
    def test_charging_curve_matches_analytic(self):
        r, c = 1000.0, 1e-9
        tau = r * c
        circuit = rc_circuit(r, c)
        result = transient(circuit, t_stop=5 * tau, dt=tau / 100)
        wave = result.wave("out")
        for t in (0.5 * tau, tau, 2 * tau, 4 * tau):
            expected = 1.0 - math.exp(-t / tau)
            assert wave.value_at(t) == pytest.approx(expected, abs=5e-3)

    def test_backward_euler_also_accurate(self):
        r, c = 1000.0, 1e-9
        tau = r * c
        options = SimOptions(integration="be")
        result = transient(rc_circuit(r, c), t_stop=3 * tau, dt=tau / 200,
                           options=options)
        expected = 1.0 - math.exp(-1.0)
        assert result.wave("out").value_at(tau) == pytest.approx(expected,
                                                                 abs=2e-2)

    def test_starts_from_operating_point(self):
        # DC value of the pulse is v1=0, so the cap starts discharged.
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-11)
        assert result.wave("out").values[0] == pytest.approx(0.0, abs=1e-9)

    def test_use_ic_starts_from_cap_ic(self):
        circuit = rc_circuit()
        circuit["C1"].ic = 0.7
        result = transient(circuit, t_stop=1e-9, dt=1e-11, use_ic=True)
        # The first accepted step must already reflect the 0.7 V initial
        # condition discharging/charging toward the input.
        assert result.wave("out").values[1] == pytest.approx(0.7, abs=0.05)

    def test_rc_discharge_through_resistor(self):
        circuit = Circuit()
        circuit.add(Capacitor("C1", "out", "0", 1e-9, ic=1.0))
        circuit.add(Resistor("R1", "out", "0", 1000))
        tau = 1e-6
        result = transient(circuit, t_stop=2 * tau, dt=tau / 200, use_ic=True)
        assert result.wave("out").value_at(tau) == pytest.approx(
            math.exp(-1.0), abs=5e-3)


class TestSources:
    def test_sine_amplitude_and_frequency(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0",
                                  Sine(1.0, 0.5, frequency=1e6)))
        circuit.add(Resistor("R1", "in", "0", 1000))
        result = transient(circuit, t_stop=2e-6, dt=2e-9)
        wave = result.wave("in")
        assert wave.maximum() == pytest.approx(1.5, abs=1e-3)
        assert wave.minimum() == pytest.approx(0.5, abs=1e-3)
        # Falling crossings of the offset give the period (the signal
        # *starts* on the offset so the t=0 rise is not a crossing).
        falls = wave.crossings(1.0, "fall")
        assert len(falls) == 2
        assert falls[1] - falls[0] == pytest.approx(1e-6, rel=1e-3)

    def test_pulse_square_wave_levels(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0",
                                  Pulse.square(0.0, 1.0, frequency=1e8)))
        circuit.add(Resistor("R1", "in", "0", 1000))
        result = transient(circuit, t_stop=30e-9, dt=25e-12)
        vlow, vhigh = result.wave("in").levels()
        assert vlow == pytest.approx(0.0, abs=1e-6)
        assert vhigh == pytest.approx(1.0, abs=1e-6)

    def test_pwl_ramp(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0",
                                  Pwl([(0, 0), (1e-6, 2.0), (2e-6, 2.0)])))
        circuit.add(Resistor("R1", "in", "0", 1000))
        result = transient(circuit, t_stop=2e-6, dt=1e-8)
        assert result.wave("in").value_at(0.5e-6) == pytest.approx(1.0,
                                                                   abs=1e-3)
        assert result.wave("in").value_at(1.5e-6) == pytest.approx(2.0,
                                                                   abs=1e-3)

    def test_breakpoints_inserted_into_grid(self):
        # A pulse edge much shorter than dt must still be resolved.
        circuit = Circuit()
        pulse = Pulse(0.0, 1.0, delay=0.5e-9, rise=1e-12, fall=1e-12,
                      width=10e-9)
        circuit.add(VoltageSource("V1", "in", "0", pulse))
        circuit.add(Resistor("R1", "in", "0", 1000))
        result = transient(circuit, t_stop=2e-9, dt=0.4e-9)
        wave = result.wave("in")
        assert wave.value_at(0.4e-9) == pytest.approx(0.0, abs=1e-3)
        assert wave.value_at(0.6e-9) == pytest.approx(1.0, abs=1e-3)


class TestNonlinearTransient:
    def test_diode_rectifier(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0",
                                  Sine(0.0, 5.0, frequency=1e6)))
        circuit.add(Diode("D1", "in", "out", isat=1e-15))
        circuit.add(Resistor("RL", "out", "0", 10e3))
        circuit.add(Capacitor("CL", "out", "0", 1e-9))
        result = transient(circuit, t_stop=4e-6, dt=4e-9)
        wave = result.wave("out")
        # Peak rectifier: settles near the positive peak minus a diode drop.
        assert 3.8 < wave.window(3e-6, 4e-6).minimum() < 4.6

    def test_bjt_switching_inverts(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
        circuit.add(VoltageSource("VIN", "b", "0",
                                  Pulse.square(0.2, 1.4, frequency=1e8)))
        circuit.add(Resistor("RC", "vcc", "c", 500))
        circuit.add(Bjt("Q1", "c", "b", "e", isat=4e-19, cje=10e-15,
                        cjc=10e-15))
        circuit.add(Resistor("RE", "e", "0", 600))
        result = transient(circuit, t_stop=30e-9, dt=20e-12)
        vin = result.wave("b")
        vout = result.wave("c")
        # Output low when input high: inverting stage.
        t_in_high = vin.crossings(0.8, "rise")[1] + 2e-9
        assert vout.value_at(t_in_high) < 3.1
        assert vout.swing() > 0.2

    def test_junction_caps_slow_edges(self):
        def delay_with_cjc(cjc: float) -> float:
            circuit = Circuit()
            circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
            # Nearly instantaneous input edges so the output slope is set
            # by the collector RC pole, not by the stimulus.
            circuit.add(VoltageSource("VIN", "b", "0",
                                      Pulse.square(0.2, 0.95, frequency=1e8,
                                                   edge_fraction=0.002)))
            circuit.add(Resistor("RC", "vcc", "c", 2000))
            circuit.add(Bjt("Q1", "c", "b", "0", isat=4e-19, cjc=cjc))
            result = transient(circuit, t_stop=20e-9, dt=10e-12)
            fall_in = result.wave("b").crossings(0.7, "rise")[0]
            fall_out = result.wave("c").first_crossing(2.0, "fall",
                                                       after=fall_in)
            return fall_out - fall_in

        assert delay_with_cjc(400e-15) > 2 * delay_with_cjc(5e-15)


class TestResultContainer:
    def test_unknown_net_raises(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-11)
        with pytest.raises(KeyError):
            result.wave("bogus")

    def test_ground_wave_is_zero(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-11)
        assert np.all(result.wave("0").values == 0.0)

    def test_branch_wave(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-11)
        wave = result.branch_wave("V1")
        assert wave.values.shape == result.times.shape

    def test_differential(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-11)
        diff = result.differential("in", "out")
        assert diff.values == pytest.approx(
            result.wave("in").values - result.wave("out").values)

    def test_final_voltages(self):
        result = transient(rc_circuit(), t_stop=1e-9, dt=1e-11)
        final = result.final_voltages()
        assert set(final) == {"in", "out"}

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            transient(rc_circuit(), t_stop=0, dt=1e-12)
        with pytest.raises(ValueError):
            transient(rc_circuit(), t_stop=1e-9, dt=-1.0)
