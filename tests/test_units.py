"""Tests for engineering-notation parsing and formatting."""

import math

import pytest

from repro.units import format_value, parse_value


class TestParseValue:
    def test_plain_number(self):
        assert parse_value("42") == 42.0

    def test_float_passthrough(self):
        assert parse_value(3.3) == 3.3

    def test_int_passthrough(self):
        assert parse_value(7) == 7.0

    def test_kilo(self):
        assert parse_value("4k") == 4000.0

    def test_pico_with_unit(self):
        assert parse_value("10pF") == pytest.approx(10e-12)

    def test_femto(self):
        assert parse_value("1f") == pytest.approx(1e-15)

    def test_meg_is_not_milli(self):
        assert parse_value("1meg") == pytest.approx(1e6)
        assert parse_value("1m") == pytest.approx(1e-3)

    def test_negative(self):
        assert parse_value("-250m") == pytest.approx(-0.25)

    def test_scientific(self):
        assert parse_value("1e-9") == pytest.approx(1e-9)

    def test_scientific_with_suffix(self):
        assert parse_value("1.5e1k") == pytest.approx(15000.0)

    def test_unit_only_ignored(self):
        assert parse_value("100MegOhm".lower()) == pytest.approx(1e8)

    def test_garbage_raises(self):
        with pytest.raises(ValueError):
            parse_value("four kilo")


class TestFormatValue:
    def test_kilo_ohm(self):
        assert format_value(4e3, "Ohm") == "4 kOhm"

    def test_pico_farad(self):
        assert format_value(10e-12, "F") == "10 pF"

    def test_zero(self):
        assert format_value(0.0, "V") == "0 V"

    def test_unitless(self):
        assert format_value(2.5e-3) == "2.5 m"

    def test_roundtrip(self):
        for value in (4e3, 53e-12, 0.25, 1e8, 3.3):
            text = format_value(value, "X")
            assert parse_value(text.replace(" ", "")) == pytest.approx(value, rel=1e-3)

    def test_nan_passthrough(self):
        assert "nan" in format_value(math.nan, "V")
