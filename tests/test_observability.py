"""Observability layer: trace propagation, exporters, profiler, top.

Acceptance for the cross-process observability features: trace ids
minted at the root survive through worker envelopes so every event of a
parallel campaign carries them; ``Tracer.ingest`` handles empty, nested
and torn inputs; histograms answer quantiles within the sketch's
relative-error bound; the Chrome/Perfetto and Prometheus exporters
round-trip; the sampling profiler attributes self/total time sanely;
and the CLI front ends (``report``, ``trace``, ``top``) drive it all.
"""

import asyncio
import json
from dataclasses import replace

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import LogicOracle, enumerate_defects, run_campaign
from repro.sim.options import DEFAULT_OPTIONS
from repro.telemetry import (
    DEFAULT_INTERVAL_S,
    MetricsRegistry,
    RunReport,
    SamplingProfiler,
    Telemetry,
    TraceContext,
    Tracer,
    aggregate_hotspots,
    chrome_trace_events,
    collapsed_stacks,
    export_trace,
    new_trace_id,
    parse_prometheus,
    profiler_for,
    prometheus_exposition,
    read_jsonl,
    write_chrome_trace,
)
from repro.telemetry.sinks import InMemorySink


def _capturing_tracer(context=None):
    sink = InMemorySink()
    tracer = Tracer([sink], context=context)
    return tracer, sink.events


# -- trace context propagation -------------------------------------------

class TestTraceContext:
    def test_root_tracer_mints_a_trace_id(self):
        tracer, events = _capturing_tracer()
        with tracer.span("root"):
            pass
        assert len(tracer.trace_id) == 16
        assert events[0]["trace_id"] == tracer.trace_id
        assert events[0]["parent_id"] is None

    def test_child_tracer_joins_the_parents_trace(self):
        parent, parent_events = _capturing_tracer()
        with parent.span("campaign") as span:
            context = parent.context(span)
        child, child_events = _capturing_tracer(context=context)
        with child.span("defect"):
            pass
        assert child.trace_id == parent.trace_id
        assert child_events[0]["trace_id"] == parent.trace_id
        assert child_events[0]["parent_id"] == span.span_id

    def test_context_defaults_to_innermost_open_span(self):
        tracer, _ = _capturing_tracer()
        with tracer.span("outer"):
            with tracer.span("inner") as inner:
                context = tracer.context()
        assert context == TraceContext(tracer.trace_id, inner.span_id)

    def test_context_is_picklable(self):
        import pickle

        context = TraceContext(new_trace_id(), "abc-1")
        assert pickle.loads(pickle.dumps(context)) == context

    def test_same_trace_events_pass_through_ingest_verbatim(self):
        parent, parent_events = _capturing_tracer()
        with parent.span("campaign") as span:
            context = parent.context(span)
        child, child_events = _capturing_tracer(context=context)
        with child.span("defect", name_hint="R1"):
            with child.span("analysis"):
                pass
        parent.ingest(child_events)
        ingested = parent_events[1:]
        assert ingested == child_events
        span_ids = {e["span_id"] for e in parent_events}
        assert len(span_ids) == 3  # no collisions across tracers


class TestIngestEdgeCases:
    def test_empty_worker_trace_is_a_no_op(self):
        tracer, events = _capturing_tracer()
        tracer.ingest([])
        assert events == []

    def test_legacy_events_are_remapped_and_reparented(self):
        parent, events = _capturing_tracer()
        with parent.span("campaign") as span:
            parent.ingest(
                [{"type": "span", "name": "w", "span_id": 1,
                  "parent_id": None, "attrs": {}}],
                parent_id=span.span_id)
        worker = events[0]
        assert worker["parent_id"] == span.span_id
        assert worker["trace_id"] == parent.trace_id
        assert worker["span_id"] != 1

    def test_deeply_nested_legacy_trace_preserves_depth(self):
        depth = 50
        legacy = [{"type": "span", "name": f"level{i}", "span_id": i,
                   "parent_id": i - 1 if i else None, "attrs": {}}
                  for i in range(depth)]
        parent, events = _capturing_tracer()
        with parent.span("campaign") as span:
            parent.ingest(legacy, parent_id=span.span_id)
        ingested = events[:depth]
        by_id = {e["span_id"]: e for e in ingested}
        # Walk leaf → root: the chain must still be `depth` levels deep
        # and terminate at the campaign span.
        node = next(e for e in ingested if e["name"] == f"level{depth - 1}")
        hops = 0
        while node["parent_id"] != span.span_id:
            node = by_id[node["parent_id"]]
            hops += 1
        assert hops == depth - 1
        assert all(e["trace_id"] == parent.trace_id for e in ingested)

    def test_non_span_events_pass_through(self):
        tracer, events = _capturing_tracer()
        profile = {"type": "profile", "n_samples": 3, "stacks": []}
        tracer.ingest([profile])
        assert events == [profile]


class TestTornJsonl:
    def test_read_jsonl_skips_torn_and_garbage_tails(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"type": "span", "name": "ok", "span_id": "a-1",'
                        ' "parent_id": null, "t_start": 1.0,'
                        ' "duration_s": 0.5, "attrs": {}}\n'
                        '[1, 2, 3]\n'
                        '{"type": "span", "name": "tor')
        events = read_jsonl(str(path))
        assert [e["name"] for e in events] == ["ok"]
        with pytest.raises(ValueError):
            read_jsonl(str(path), strict=True)

    def test_report_from_torn_jsonl(self, tmp_path):
        tel = Telemetry.to_jsonl(str(tmp_path / "trace.jsonl"))
        with tel.span("campaign", n_defects=0):
            pass
        tel.close()
        with open(tmp_path / "trace.jsonl", "a") as handle:
            handle.write('{"type": "span", "name": "torn-off-mid-wr')
        report = RunReport.from_jsonl(str(tmp_path / "trace.jsonl"))
        assert len(report.named("campaign")) == 1


# -- histogram quantiles -------------------------------------------------

class TestHistogramQuantiles:
    def test_quantiles_within_sketch_error(self):
        registry = MetricsRegistry()
        h = registry.histogram("latency")
        for value in range(1, 101):
            h.observe(float(value))
        for q, expect in ((0.50, 50.0), (0.95, 95.0), (0.99, 99.0)):
            assert h.quantile(q) == pytest.approx(expect, rel=0.10)
        assert h.quantile(0.0) == 1.0
        assert h.quantile(1.0) == 100.0

    def test_nonpositive_values_sort_below_the_buckets(self):
        h = MetricsRegistry().histogram("signed")
        for value in (-1.0, 0.0, 10.0, 20.0):
            h.observe(value)
        assert h.quantile(0.25) <= 0.0
        assert h.quantile(1.0) == 20.0

    def test_split_merge_equals_single_registry(self):
        whole = MetricsRegistry()
        left, right = MetricsRegistry(), MetricsRegistry()
        for i in range(40):
            value = 0.5 + i * 0.37
            whole.histogram("h").observe(value)
            (left if i % 2 else right).histogram("h").observe(value)
        merged = MetricsRegistry()
        merged.merge(left.snapshot())
        merged.merge(right.snapshot())
        assert merged.snapshot() == whole.snapshot()

    def test_summary_carries_quantile_keys(self):
        h = MetricsRegistry().histogram("h")
        h.observe(2.0)
        summary = h.summary()
        assert {"p50", "p95", "p99"} <= set(summary)
        assert summary["p50"] == 2.0


# -- exporters -----------------------------------------------------------

class TestChromeExport:
    def _events(self):
        tracer, events = _capturing_tracer()
        with tracer.span("campaign", n_defects=2):
            with tracer.span("defect", defect="R1"):
                pass
        return events, tracer

    def test_spans_become_complete_events(self):
        events, tracer = self._events()
        chrome = chrome_trace_events(events)
        assert len(chrome) == 2
        assert all(e["ph"] == "X" for e in chrome)
        assert all(e["dur"] >= 0 for e in chrome)
        assert min(e["ts"] for e in chrome) == 0.0
        by_name = {e["name"]: e for e in chrome}
        assert by_name["defect"]["args"]["defect"] == "R1"
        assert by_name["defect"]["args"]["trace_id"] == tracer.trace_id

    def test_non_spans_are_skipped_and_file_round_trips(self, tmp_path):
        events, _ = self._events()
        events = events + [{"type": "metrics"}, {"type": "profile"}]
        path = tmp_path / "trace.json"
        assert write_chrome_trace(events, str(path)) == 2
        document = json.loads(path.read_text())
        assert document["displayTimeUnit"] == "ms"
        assert [e["name"] for e in document["traceEvents"]] == \
            ["defect", "campaign"]

    def test_export_trace_dispatch(self, tmp_path):
        events, _ = self._events()
        assert export_trace(events, str(tmp_path / "t.json"),
                            fmt="chrome") == 2
        with pytest.raises(ValueError, match="unknown trace export"):
            export_trace(events, str(tmp_path / "t.x"), fmt="svg")


class TestPrometheus:
    def _registry(self):
        registry = MetricsRegistry()
        registry.counter("solver.newton_solves").add(7)
        registry.gauge("service.queue_depth").set(3)
        h = registry.histogram("service.job_wall_s")
        for value in (0.5, 1.0, 2.0):
            h.observe(value)
        return registry

    def test_round_trip(self):
        text = prometheus_exposition(self._registry())
        samples = parse_prometheus(text)
        assert samples["repro_solver_newton_solves"] == 7
        assert samples["repro_service_queue_depth"] == 3
        assert samples["repro_service_job_wall_s_count"] == 3
        assert samples["repro_service_job_wall_s_sum"] == \
            pytest.approx(3.5)
        assert 'repro_service_job_wall_s{quantile="0.5"}' in samples
        assert 'repro_service_job_wall_s{quantile="0.99"}' in samples

    def test_names_are_sanitized(self):
        registry = MetricsRegistry()
        registry.counter("weird metric-name!").add(1)
        text = prometheus_exposition(registry)
        assert parse_prometheus(text)["repro_weird_metric_name_"] == 1

    def test_snapshot_dict_is_accepted(self):
        snapshot = self._registry().snapshot()
        assert prometheus_exposition(snapshot) == \
            prometheus_exposition(self._registry())

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError, match="malformed"):
            parse_prometheus("this is not an exposition\n")
        assert parse_prometheus("# just a comment\n\n") == {}


# -- sampling profiler ---------------------------------------------------

def _busy_wait(seconds):
    import time
    deadline = time.perf_counter() + seconds
    total = 0.0
    while time.perf_counter() < deadline:
        total += sum(i * i for i in range(200))
    return total


class TestSamplingProfiler:
    def test_samples_a_busy_function(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            _busy_wait(0.15)
        assert profiler.n_samples > 0
        assert profiler.wall_s > 0.1
        frames = {frame for stack in profiler.stacks() for frame in stack}
        assert any("_busy_wait" in frame for frame in frames)

    def test_event_and_hotspots(self):
        with SamplingProfiler(interval_s=0.001) as profiler:
            _busy_wait(0.15)
        event = profiler.to_event(span_id="a-1", trace_id="t")
        assert event["type"] == "profile"
        assert event["span_id"] == "a-1"
        assert event["n_samples"] == \
            sum(s["count"] for s in event["stacks"])
        rows = aggregate_hotspots([event])
        assert rows
        self_total = sum(row["self_s"] for row in rows)
        assert 0.0 < self_total <= profiler.wall_s + profiler.interval_s
        assert all(row["total_s"] >= row["self_s"] - 1e-9 for row in rows)
        assert sum(row["self_pct"] for row in rows) == \
            pytest.approx(100.0, abs=1.0)

    def test_collapsed_stacks_from_profile_event(self):
        event = {"type": "profile", "interval_s": 0.001,
                 "stacks": [{"frames": ["m.a", "m.b"], "count": 3},
                            {"frames": ["m.a"], "count": 5}]}
        assert collapsed_stacks([event, dict(event)]) == \
            [("m.a", 10), ("m.a;m.b", 6)]

    def test_rejects_nonpositive_interval(self):
        with pytest.raises(ValueError):
            SamplingProfiler(interval_s=0.0)


class TestProfilerFor:
    def test_options_flag_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_PROFILE", raising=False)
        options = replace(DEFAULT_OPTIONS, profile=True,
                          profile_interval_s=0.002)
        profiler = profiler_for(options)
        assert profiler is not None and profiler.interval_s == 0.002

    def test_env_values(self, monkeypatch):
        for raw, expect in (("1", DEFAULT_INTERVAL_S),
                            ("0.002", 0.002),
                            ("yes", DEFAULT_INTERVAL_S)):
            monkeypatch.setenv("REPRO_PROFILE", raw)
            profiler = profiler_for(DEFAULT_OPTIONS)
            assert profiler is not None and profiler.interval_s == expect
        for raw in ("", "0", "false", "off", "no"):
            monkeypatch.setenv("REPRO_PROFILE", raw)
            assert profiler_for(DEFAULT_OPTIONS) is None


# -- traced + profiled campaigns -----------------------------------------

@pytest.fixture(scope="module")
def small_campaign():
    chain = buffer_chain(NOMINAL, n_stages=2, frequency=100e6)
    build_shared_monitor(chain.circuit, chain.output_nets, tech=NOMINAL)
    oracles = [LogicOracle(chain.output_nets)]
    defects = list(enumerate_defects(chain.circuit, kinds=("pipe",),
                                     pipe_resistances=(4e3,)))[:4]
    return chain, oracles, defects


class TestCampaignObservability:
    def test_parallel_events_all_carry_the_root_trace_id(
            self, small_campaign):
        chain, oracles, defects = small_campaign
        tel = Telemetry.capturing()
        options = replace(DEFAULT_OPTIONS, telemetry=tel)
        run_campaign(chain.circuit, defects, oracles, options=options,
                     parallel=True, workers=2)
        tel.flush_metrics()
        events = tel.events()
        assert len(events) > len(defects)
        assert all(e.get("trace_id") == tel.tracer.trace_id
                   for e in events if e.get("type") != "meta")

    def test_profiled_campaign_emits_profile_event(self, small_campaign):
        chain, oracles, defects = small_campaign
        tel = Telemetry.capturing()
        options = replace(DEFAULT_OPTIONS, telemetry=tel, profile=True,
                          profile_interval_s=0.001)
        run_campaign(chain.circuit, defects, oracles, options=options)
        profiles = [e for e in tel.events() if e.get("type") == "profile"]
        assert len(profiles) == 1
        campaign = [e for e in tel.events()
                    if e.get("type") == "span"
                    and e.get("name") == "campaign"]
        assert profiles[0]["span_id"] == campaign[0]["span_id"]
        assert profiles[0]["trace_id"] == tel.tracer.trace_id
        report = RunReport.from_events(tel.events())
        if profiles[0]["n_samples"]:
            assert "Profiler hotspots" in report.render()
            assert report.hotspots()

    def test_report_renders_histogram_quantiles(self, small_campaign):
        chain, oracles, defects = small_campaign
        tel = Telemetry.capturing()
        options = replace(DEFAULT_OPTIONS, telemetry=tel)
        run_campaign(chain.circuit, defects, oracles, options=options)
        tel.flush_metrics()
        report = RunReport.from_events(tel.events())
        rows = report.histogram_quantiles()
        assert any(row["name"] == "newton.iterations_per_solve"
                   for row in rows)
        assert "Histogram quantiles" in report.render()


# -- service scrape + dashboards -----------------------------------------

class TestServiceExposition:
    def test_stats_op_serves_parseable_exposition(self, tmp_path):
        from repro.service import CampaignService, JobSpec, \
            submit_and_stream

        async def scenario():
            service = CampaignService(store=str(tmp_path / "store"),
                                      workers=1)
            server = await service.serve(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                spec = JobSpec(stages=2, kinds=("pipe",),
                               pipe_resistances=(4e3,), limit=3)
                events = await submit_and_stream(host, port, spec)
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(b'{"op": "stats"}\n')
                await writer.drain()
                stats = json.loads(await reader.readline())
                writer.close()
            finally:
                server.close()
                await server.wait_closed()
            return service, events, stats

        service, events, stats = asyncio.run(scenario())
        trace_id = service.telemetry.tracer.trace_id
        accepted = [e for e in events if e["event"] == "accepted"]
        done = [e for e in events if e["event"] == "done"]
        assert accepted[0]["trace_id"] == trace_id
        assert done[0]["trace_id"] == trace_id
        assert stats["event"] == "stats"
        assert stats["trace_id"] == trace_id
        assert stats["jobs_completed"] == 1
        assert stats["defects_total"] == 3
        assert stats["uptime_s"] >= 0.0
        samples = parse_prometheus(stats["exposition"])
        assert samples["repro_service_jobs_submitted"] == 1
        assert samples["repro_service_jobs_completed"] == 1
        assert 'repro_service_job_wall_s{quantile="0.5"}' in samples
        assert "repro_service_job_wall_s_count" in samples


# -- CLI front ends ------------------------------------------------------

class TestCli:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry.to_jsonl(str(path))
        with SamplingProfiler(interval_s=0.001) as profiler:
            with tel.span("campaign", n_defects=1) as span:
                with tel.span("defect", defect="R1"):
                    _busy_wait(0.05)
        tel.tracer.emit(profiler.to_event(span_id=span.span_id,
                                          trace_id=tel.tracer.trace_id))
        tel.flush_metrics()
        tel.close()
        return path

    def test_report_subcommand(self, trace_file, capsys):
        from repro.__main__ import main
        assert main(["report", str(trace_file)]) == 0
        out = capsys.readouterr().out
        assert "campaign" in out
        assert main(["report", str(trace_file), "--markdown"]) == 0

    def test_trace_export_chrome(self, trace_file, tmp_path, capsys):
        from repro.__main__ import main
        out_path = tmp_path / "perfetto.json"
        assert main(["trace", "export", str(trace_file),
                     "-o", str(out_path)]) == 0
        assert "wrote 2 span(s)" in capsys.readouterr().out
        document = json.loads(out_path.read_text())
        assert len(document["traceEvents"]) == 2

    def test_trace_export_collapsed(self, trace_file, tmp_path, capsys):
        from repro.__main__ import main
        out_path = tmp_path / "stacks.txt"
        assert main(["trace", "export", str(trace_file),
                     "-o", str(out_path), "--format", "collapsed"]) == 0
        assert "stack line(s)" in capsys.readouterr().out
        text = out_path.read_text()
        for line in text.splitlines():
            stack, count = line.rsplit(" ", 1)
            assert int(count) >= 1 and stack

    def test_trace_report_alias(self, trace_file, capsys):
        from repro.__main__ import main
        assert main(["trace", "report", str(trace_file)]) == 0
        assert "campaign" in capsys.readouterr().out

    def test_top_once_against_live_service(self, capsys):
        from repro.__main__ import main
        from repro.service import CampaignService

        async def scenario():
            service = CampaignService(workers=1)
            server = await service.serve(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            # The scrape opens a blocking socket; run it off-loop so the
            # service event loop can answer.
            code = await asyncio.to_thread(
                main, ["top", f"{host}:{port}", "--once"])
            server.close()
            await server.wait_closed()
            return code

        assert asyncio.run(scenario()) == 0
        out = capsys.readouterr().out
        assert "jobs submitted" in out
        assert "queue depth" in out

    def test_top_refuses_bad_address(self, capsys):
        from repro.__main__ import main
        assert main(["top", "no-port-here", "--once"]) == 2
        assert main(["top", "127.0.0.1:1", "--once"]) == 1
