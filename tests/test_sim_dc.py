"""DC operating-point tests against hand-computable circuits."""

import math

import numpy as np
import pytest

from repro.circuit import (
    Bjt,
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    MultiEmitterBjt,
    Resistor,
    THERMAL_VOLTAGE,
    VoltageSource,
)
from repro.sim import kcl_residuals, operating_point


class TestLinearCircuits:
    def test_voltage_divider(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", 10.0))
        circuit.add(Resistor("R1", "in", "mid", 1000))
        circuit.add(Resistor("R2", "mid", "0", 3000))
        op = operating_point(circuit)
        assert op.voltage("mid") == pytest.approx(7.5)
        assert op.voltage("in") == pytest.approx(10.0)

    def test_source_branch_current(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", 10.0))
        circuit.add(Resistor("R1", "in", "0", 1000))
        op = operating_point(circuit)
        # Convention: branch current flows p -> n through the source, so a
        # battery driving a load reports a negative current.
        assert op.branch_current("V1") == pytest.approx(-0.01)

    def test_current_source_into_resistor(self):
        circuit = Circuit()
        circuit.add(CurrentSource("I1", "0", "out", 1e-3))
        circuit.add(Resistor("R1", "out", "0", 2000))
        op = operating_point(circuit)
        assert op.voltage("out") == pytest.approx(2.0)

    def test_superposition_of_two_sources(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "a", "0", 5.0))
        circuit.add(VoltageSource("V2", "b", "0", 3.0))
        circuit.add(Resistor("Ra", "a", "out", 1000))
        circuit.add(Resistor("Rb", "b", "out", 1000))
        circuit.add(Resistor("Rg", "out", "0", 1000))
        op = operating_point(circuit)
        # out = (5/1k + 3/1k) / (3/1k) = 8/3
        assert op.voltage("out") == pytest.approx(8.0 / 3.0)

    def test_differential_helper(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "a", "0", 2.0))
        circuit.add(VoltageSource("V2", "b", "0", 0.5))
        circuit.add(Resistor("R1", "a", "b", 1000))
        op = operating_point(circuit)
        assert op.differential("a", "b") == pytest.approx(1.5)

    def test_stacked_voltage_sources(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "a", "0", 1.0))
        circuit.add(VoltageSource("V2", "b", "a", 2.0))
        circuit.add(Resistor("R", "b", "0", 1000))
        op = operating_point(circuit)
        assert op.voltage("b") == pytest.approx(3.0)


class TestDiodeCircuits:
    def test_diode_forward_drop(self):
        isat = 1e-15
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", 5.0))
        circuit.add(Resistor("R1", "in", "d", 1000))
        circuit.add(Diode("D1", "d", "0", isat=isat))
        op = operating_point(circuit)
        vd = op.voltage("d")
        i = (5.0 - vd) / 1000
        # The diode equation must hold at the solution.
        expected_i = isat * (math.exp(vd / THERMAL_VOLTAGE) - 1)
        assert i == pytest.approx(expected_i, rel=1e-2)
        assert 0.6 < vd < 0.85

    def test_reverse_biased_diode_blocks(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", -5.0))
        circuit.add(Resistor("R1", "in", "d", 1000))
        circuit.add(Diode("D1", "d", "0"))
        op = operating_point(circuit)
        # Almost no current: the node follows the source.
        assert op.voltage("d") == pytest.approx(-5.0, abs=1e-3)

    def test_two_diodes_in_series_split_drop(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", 5.0))
        circuit.add(Resistor("R1", "in", "d1", 1000))
        circuit.add(Diode("D1", "d1", "d2", isat=1e-15))
        circuit.add(Diode("D2", "d2", "0", isat=1e-15))
        op = operating_point(circuit)
        v1 = op.voltage("d1") - op.voltage("d2")
        v2 = op.voltage("d2")
        assert v1 == pytest.approx(v2, rel=1e-3)


class TestBjtCircuits:
    def make_common_emitter(self, vcc=5.0, rb=100e3, rc=1000):
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", vcc))
        circuit.add(Resistor("RB", "vcc", "b", rb))
        circuit.add(Resistor("RC", "vcc", "c", rc))
        circuit.add(Bjt("Q1", "c", "b", "0", isat=1e-16, beta_f=100))
        return circuit

    def test_common_emitter_active_region(self):
        circuit = self.make_common_emitter()
        op = operating_point(circuit)
        info = op.operating_info("Q1")
        # Ib ~ (5 - 0.75) / 100k ~ 42 uA, Ic ~ beta * Ib while active.
        assert info["vbe"] == pytest.approx(0.78, abs=0.08)
        assert info["ic"] == pytest.approx(100 * info["ib"], rel=0.05)
        assert 0.2 < op.voltage("c") < 1.5

    def test_saturated_bjt_vce_small(self):
        # Huge base drive with large collector resistor: saturation.
        circuit = self.make_common_emitter(rb=10e3, rc=100e3)
        op = operating_point(circuit)
        vce = op.voltage("c")
        assert vce < 0.25

    def test_emitter_follower_level_shift(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
        circuit.add(VoltageSource("VIN", "b", "0", 2.0))
        circuit.add(Bjt("Q1", "vcc", "b", "e", isat=4e-19))
        circuit.add(Resistor("RE", "e", "0", 4000))
        op = operating_point(circuit)
        vbe = 2.0 - op.voltage("e")
        assert 0.8 < vbe < 1.0  # ~900 mV technology

    def test_kcl_residuals_tiny(self):
        circuit = self.make_common_emitter()
        op = operating_point(circuit)
        residuals = kcl_residuals(circuit, op)
        # Residuals scale with junction conductance times the Newton voltage
        # tolerance; 1e-7 A is far below any current of interest here.
        assert max(abs(r) for r in residuals.values()) < 1e-7

    def test_operating_info_for_source(self):
        circuit = self.make_common_emitter()
        op = operating_point(circuit)
        info = op.operating_info("VCC")
        assert info["v"] == pytest.approx(5.0)
        assert info["i"] < 0  # battery delivering current

    def test_initial_guess_reuse(self):
        circuit = self.make_common_emitter()
        op1 = operating_point(circuit)
        op2 = operating_point(circuit, initial=op1.x)
        assert np.allclose(op1.x, op2.x, atol=1e-6)
        assert op2.stats.iterations <= op1.stats.iterations


class TestMultiEmitterBjt:
    def test_matches_parallel_single_emitter(self):
        """A dual-emitter transistor with both emitters tied together must
        behave like a single transistor of the same total emitter area."""

        def build(multi: bool) -> Circuit:
            circuit = Circuit()
            circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
            circuit.add(VoltageSource("VB", "b", "0", 1.0))
            circuit.add(Resistor("RC", "vcc", "c", 500))
            circuit.add(Resistor("RE", "e", "0", 1000))
            if multi:
                circuit.add(MultiEmitterBjt("Q", "c", "b", ["e", "e"],
                                            isat=1e-18))
            else:
                circuit.add(Bjt("Q1", "c", "b", "e", isat=1e-18))
                circuit.add(Bjt("Q2", "c", "b", "e", isat=1e-18))
            return circuit

        op_multi = operating_point(build(True))
        op_pair = operating_point(build(False))
        assert op_multi.voltage("c") == pytest.approx(op_pair.voltage("c"),
                                                      abs=2e-3)
        assert op_multi.voltage("e") == pytest.approx(op_pair.voltage("e"),
                                                      abs=2e-3)

    def test_independent_emitters_conduct_independently(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
        circuit.add(VoltageSource("VB", "b", "0", 1.2))
        circuit.add(VoltageSource("VE2", "e2", "0", 1.0))  # reverse-biased
        circuit.add(Resistor("RC", "vcc", "c", 500))
        circuit.add(Resistor("RE1", "e1", "0", 1000))
        circuit.add(MultiEmitterBjt("Q", "c", "b", ["e1", "e2"], isat=4e-19))
        op = operating_point(circuit)
        info = op.operating_info("Q")
        assert info["ide_e1"] > 100 * max(info["ide_e2"], 1e-15)

    def test_kcl_holds_for_multi_emitter(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
        circuit.add(VoltageSource("VB", "b", "0", 1.0))
        circuit.add(Resistor("RC", "vcc", "c", 500))
        circuit.add(Resistor("RE1", "e1", "0", 1500))
        circuit.add(Resistor("RE2", "e2", "0", 1000))
        circuit.add(MultiEmitterBjt("Q", "c", "b", ["e1", "e2"], isat=4e-19))
        op = operating_point(circuit)
        residuals = kcl_residuals(circuit, op)
        assert max(abs(r) for r in residuals.values()) < 1e-9


class TestRobustness:
    def test_floating_net_raises(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", 1.0))
        circuit.add(Resistor("R1", "in", "out", 1000))
        circuit.add(Capacitor("Cfloat", "other", "0", 1e-12))
        with pytest.raises(Exception):
            operating_point(circuit)

    def test_voltage_source_loop_raises(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "a", "0", 1.0))
        circuit.add(VoltageSource("V2", "a", "0", 2.0))
        circuit.add(Resistor("R", "a", "0", 1000))
        with pytest.raises(Exception):
            operating_point(circuit)

    def test_stats_reported(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", 1.0))
        circuit.add(Resistor("R1", "in", "0", 1000))
        op = operating_point(circuit)
        assert op.stats.iterations >= 1
        assert op.stats.strategy == "newton"
