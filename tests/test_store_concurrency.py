"""Concurrent writers against one result store directory.

The store's multi-process safety rests on one invariant: writers never
share a segment file, so there is no interleaving to corrupt and no
lock to forget.  This stress test hammers a single store directory
from several real OS processes at once and asserts that *every* record
survives, byte-exact, including under overlapping key ranges where
dedup must keep exactly one copy per key.
"""

import json
import multiprocessing
import os

import pytest

from repro.store import ResultStore

N_PROCESSES = 4
PUTS_PER_PROCESS = 50


def _hammer(path, writer_id, n_puts, overlap):
    """Open a private store handle and write ``n_puts`` records.

    ``overlap=True`` makes every writer fight over the same key range
    (pure dedup stress); ``False`` gives each writer its own range so
    the final index must hold every record from every process.
    """
    store = ResultStore(path)
    for i in range(n_puts):
        key = f"key-{i:04d}" if overlap else f"key-{writer_id}-{i:04d}"
        store.put(key, {"writer": writer_id, "i": i,
                        "payload": "x" * 64})
    store.close()


def _run_writers(path, overlap):
    processes = [
        multiprocessing.Process(target=_hammer,
                                args=(str(path), w, PUTS_PER_PROCESS,
                                      overlap))
        for w in range(N_PROCESSES)
    ]
    for process in processes:
        process.start()
    for process in processes:
        process.join(timeout=60)
        assert process.exitcode == 0


@pytest.mark.timeout(120)
class TestConcurrentWriters:
    def test_disjoint_writers_lose_nothing(self, tmp_path):
        path = tmp_path / "store"
        _run_writers(path, overlap=False)
        store = ResultStore(path)
        assert len(store) == N_PROCESSES * PUTS_PER_PROCESS
        for writer in range(N_PROCESSES):
            for i in range(PUTS_PER_PROCESS):
                entry = store.get(f"key-{writer}-{i:04d}")
                assert entry == {"writer": writer, "i": i,
                                 "payload": "x" * 64}
        # One segment per writer process — the no-shared-file invariant.
        segments = list((path / "segments").glob("*.jsonl"))
        assert len(segments) == N_PROCESSES
        pids = {segment.name.split("-")[1] for segment in segments}
        assert len(pids) == N_PROCESSES

    def test_overlapping_writers_converge_to_one_copy_per_key(
            self, tmp_path):
        path = tmp_path / "store"
        _run_writers(path, overlap=True)
        store = ResultStore(path)
        assert len(store) == PUTS_PER_PROCESS
        for i in range(PUTS_PER_PROCESS):
            entry = store.get(f"key-{i:04d}")
            # Some writer won each key; the entry must be one of the
            # competing values, intact.
            assert entry["i"] == i
            assert entry["writer"] in range(N_PROCESSES)
            assert entry["payload"] == "x" * 64
        # Every line on disk is valid JSON — no torn or interleaved
        # writes anywhere, in any segment.
        for segment in (path / "segments").glob("*.jsonl"):
            for line in segment.read_text().splitlines():
                record = json.loads(line)
                assert record["type"] == "record"

    def test_forked_child_opens_its_own_segment(self, tmp_path):
        path = tmp_path / "store"
        store = ResultStore(path)
        store.put("parent-key", {"writer": "parent"})
        parent_segment = store._segment_path

        child = multiprocessing.Process(
            target=_hammer, args=(str(path), "child", 3, False))
        child.start()
        child.join(timeout=60)
        assert child.exitcode == 0

        store.put("parent-key-2", {"writer": "parent"})
        store.refresh()
        assert len(store) == 5
        # The parent kept its own segment; the child never wrote to it.
        parent_lines = parent_segment.read_text().splitlines()
        assert len(parent_lines) == 2
        assert all(json.loads(line)["entry"]["writer"] == "parent"
                   for line in parent_lines)

    def test_compact_after_stress_keeps_every_record(self, tmp_path):
        path = tmp_path / "store"
        _run_writers(path, overlap=False)
        store = ResultStore(path)
        kept = store.compact()
        assert kept == N_PROCESSES * PUTS_PER_PROCESS
        assert len(list((path / "segments").glob("*.jsonl"))) == 1
        reopened = ResultStore(path)
        assert len(reopened) == kept


def test_writer_reopens_after_pid_change(tmp_path):
    # Simulate the fork-inheritance hazard directly: lie about the pid
    # and check the next put lands in a fresh segment.
    store = ResultStore(tmp_path / "store")
    store.put("k1", {"i": 1})
    first_segment = store._segment_path
    store._segment_pid = os.getpid() - 1  # pretend we were forked
    store.put("k2", {"i": 2})
    assert store._segment_path != first_segment
    assert len(first_segment.read_text().splitlines()) == 1
