"""Tests of the prior-art XOR observer baseline (Menon [4])."""

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import attach_xor_observer, build_shared_monitor, observer_verdict
from repro.faults import Bridge, Pipe, inject
from repro.sim import operating_point, run_cycles

TECH = NOMINAL


def _verdict(defect=None):
    chain = buffer_chain(TECH, frequency=100e6)
    observer = attach_xor_observer(chain.circuit, "op", "opb", tech=TECH)
    circuit = inject(chain.circuit, defect) if defect else chain.circuit
    op = operating_point(circuit)
    accessor = op.structure.voltages_from(op.x)
    return observer_verdict(accessor, observer, TECH)


class TestObserverBehaviour:
    def test_fault_free_reads_good(self):
        assert _verdict() == "good"

    def test_like_fault_detected(self):
        """An output-pair bridge collapses complementarity — exactly the
        fault class Menon's observer exists for."""
        assert _verdict(Bridge("op", "opb", 1.0)) in ("weak", "fault")

    def test_blind_to_amplitude_fault(self):
        """The paper's motivating gap: a pipe doubles the swing but the
        outputs remain logically complementary — the observer passes."""
        assert _verdict(Pipe("DUT.Q3", 4e3)) == "good"

    def test_blind_to_amplitude_fault_dynamically(self):
        """Over a full toggling run, the faulty observer output is
        indistinguishable from the fault-free one (transition glitches
        occur in both — simultaneous XOR input switching — so blindness
        means identical plateaus, not glitch-free output)."""
        def observer_levels(defect):
            chain = buffer_chain(TECH, frequency=100e6)
            observer = attach_xor_observer(chain.circuit, "op", "opb",
                                           tech=TECH)
            circuit = (inject(chain.circuit, defect) if defect
                       else chain.circuit)
            result = run_cycles(circuit, 100e6, cycles=2.5,
                                points_per_cycle=300)
            diff = (result.wave(observer.output[0])
                    - result.wave(observer.output[1])).window(8e-9, 25e-9)
            return diff.levels()

        clean = observer_levels(None)
        piped = observer_levels(Pipe("DUT.Q3", 4e3))
        assert piped[1] == pytest.approx(clean[1], abs=0.02)
        assert piped[0] == pytest.approx(clean[0], abs=0.05)

    def test_good_output_stays_high_while_toggling(self):
        chain = buffer_chain(TECH, frequency=100e6)
        observer = attach_xor_observer(chain.circuit, "op", "opb",
                                       tech=TECH)
        result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                            points_per_cycle=300)
        diff = (result.wave(observer.output[0])
                - result.wave(observer.output[1])).window(8e-9, 25e-9)
        # Brief transition glitches are expected at input edges; the
        # plateau must stay a solid logic 1.
        vlow, vhigh = diff.levels()
        assert vhigh > 0.8 * TECH.swing

    def test_transistor_accounting(self):
        chain = buffer_chain(TECH)
        observer = attach_xor_observer(chain.circuit, "op", "opb",
                                       tech=TECH)
        assert observer.n_transistors == 9  # xor (7) + 2 shifters


class TestHeadToHead:
    """The comparison the paper argues in its introduction."""

    @pytest.fixture(scope="class")
    def instrumented(self):
        chain = buffer_chain(TECH, frequency=100e6)
        observer = attach_xor_observer(chain.circuit, "op", "opb",
                                       tech=TECH)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                       tech=TECH)
        return chain, observer, monitor

    def _solve(self, instrumented, defect):
        chain, observer, monitor = instrumented
        circuit = inject(chain.circuit, defect) if defect else chain.circuit
        op = operating_point(circuit)
        accessor = op.structure.voltages_from(op.x)
        xor_says = observer_verdict(accessor, observer, TECH)
        detector_says = ("fault" if op.voltage(monitor.nets.flag)
                         < op.voltage(monitor.nets.flagb) else "good")
        return xor_says, detector_says

    def test_both_pass_fault_free(self, instrumented):
        assert self._solve(instrumented, None) == ("good", "good")

    def test_amplitude_fault_only_detector(self, instrumented):
        xor_says, detector_says = self._solve(instrumented,
                                              Pipe("DUT.Q3", 4e3))
        assert xor_says == "good"       # prior art blind
        assert detector_says == "fault"  # paper's method fires

    def test_like_fault_both_react(self, instrumented):
        xor_says, detector_says = self._solve(instrumented,
                                              Bridge("op", "opb", 1.0))
        assert xor_says in ("weak", "fault")
        # The bridge holds both outputs near the common mid level, which
        # is also below the nominal low — the amplitude detector sees it
        # too (levels sit 125 mV under vlow? they sit at the average of
        # high/low = vgnd - swing/2, caught only if below vtest - VBE).
        assert detector_says in ("good", "fault")
