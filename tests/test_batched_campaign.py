"""Tests for the batched multi-defect campaign engine.

The batched engine stacks many low-rank fault systems into one
vectorised Newton iteration (``repro.sim.batch``).  Its contract is the
strongest the repo makes: per-member operating points, solver stats and
campaign verdicts are *bit-identical* to the serial delta engine's, any
member that leaves the batch is re-solved through the serial per-defect
ladder (so fallback records match a serial campaign field for field),
and the batch counters surface through CampaignResult and telemetry.
"""

import os

import numpy as np
import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    FlagOracle,
    IddqOracle,
    LogicOracle,
    enumerate_defects,
    run_campaign,
)
from repro.faults.campaign import DEFAULT_BATCH_SIZE
from repro.sim.batch import solve_batch
from repro.sim.dc import (ConvergenceError, DeltaContext, NewtonStats,
                          delta_solve, operating_point)
from repro.sim.mna import SingularMatrixError
from repro.sim.options import SimOptions
from repro.telemetry import Telemetry
from repro.verify import cross_check, load_scenario
from repro.verify.generate import build_scenario
from repro.verify.oracle import ENGINES_BY_NAME, VERIFY_OPTIONS, _fresh_oracles

CORPUS_WITNESS = os.path.join(os.path.dirname(__file__), "corpus",
                              "batched_midbatch_fallback.json")


def _bench():
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(
        chain.circuit,
        kinds=("pipe", "terminal-short", "resistor-short", "resistor-open"),
        pipe_resistances=(2e3, 4e3)))
    return chain.circuit, defects, oracles


@pytest.fixture(scope="module")
def bench():
    return _bench()


def _member_specs(circuit, defects, context):
    specs, kept = [], []
    for defect in defects:
        deltas = defect.delta_conductances(circuit)
        if deltas is None:
            continue
        pairs = [(context.structure.index(p), context.structure.index(n))
                 for p, n, _ in deltas]
        specs.append((pairs, [g for _, _, g in deltas]))
        kept.append(defect)
    return kept, specs


def _record_core(record):
    """Everything checkpointable about a record except the solver tag
    (a batch-converged member is tagged ``batched`` instead of
    ``delta`` by design)."""
    return (dict(record.verdicts), record.converged,
            record.newton_iterations, record.n_factorizations,
            record.n_reuses, record.gmin_steps, record.source_steps,
            record.quarantined, record.quarantine_reason)


@pytest.mark.parametrize("sparse", [False, True], ids=["dense", "sparse"])
def test_solve_batch_bitwise_identical_to_serial(bench, sparse):
    """Batch-converged members land on bit-identical operating points
    with identical solver stats; members that leave the batch are
    exactly those the serial chord abandons."""
    circuit, defects, _ = bench
    options = SimOptions(sparse_threshold=1) if sparse else SimOptions()
    reference = operating_point(circuit, options)
    context = DeltaContext.build(circuit, options, reference.x.copy())
    assert context.system.sparse is sparse
    kept, specs = _member_specs(circuit, defects, context)
    assert len(specs) > 50

    outcomes, counters = solve_batch(context, specs, options)
    assert counters.n_batched_solves > 0
    assert counters.batch_occupancy >= counters.n_batched_solves
    assert counters.batch_fallbacks == sum(
        1 for outcome in outcomes if outcome.x is None)

    n_bitwise = 0
    for (pairs, gs), outcome in zip(specs, outcomes):
        stats = NewtonStats(strategy="woodbury")
        try:
            x_serial = delta_solve(context, pairs, gs, options, stats)
        except (ConvergenceError, SingularMatrixError):
            x_serial = None
        if outcome.x is None:
            # A batch dropout must never be a member the serial *chord*
            # solves: on dense the trajectories are identical, and on
            # sparse the only extra exits (blow-up, repeated stalls)
            # are ones serial chording also escalates — delta_solve may
            # still save it via the replay rung, which is exactly the
            # ladder the campaign fallback re-runs.
            continue
        assert x_serial is not None
        assert np.array_equal(outcome.x, x_serial)
        assert (outcome.stats.iterations, outcome.stats.n_factorizations,
                outcome.stats.n_reuses) == (
            stats.iterations, stats.n_factorizations, stats.n_reuses)
        n_bitwise += 1
    assert n_bitwise > 30


def test_batched_campaign_records_match_serial_delta(bench):
    """run_campaign(batched=True) reproduces the serial delta campaign
    record for record: identical verdicts everywhere, identical stats on
    batch-solved members, and *field-identical* fallback records."""
    circuit, defects, _ = bench
    # oracles hold prepared state — build a fresh set per campaign
    serial = run_campaign(circuit, defects, _bench()[2], delta=True)
    batched = run_campaign(circuit, defects, _bench()[2], batched=True)

    assert len(serial.records) == len(batched.records)
    for a, b in zip(serial.records, batched.records):
        assert _record_core(a) == _record_core(b)
        if b.solver == "batched":
            assert a.solver == "delta"
        else:
            assert b.solver == a.solver

    counts = batched.solver_counts()
    assert counts.get("batched", 0) > 50
    assert batched.n_batched_solves > 0
    assert batched.batch_occupancy > batched.n_batched_solves
    aggregate = batched.aggregate_stats()
    assert aggregate.n_batched_solves == batched.n_batched_solves
    assert aggregate.batch_occupancy == batched.batch_occupancy
    assert aggregate.batch_fallbacks == batched.batch_fallbacks


def test_batched_campaign_parallel_matches_serial_batched(bench):
    circuit, defects, _ = bench
    subset = defects[:40]
    serial = run_campaign(circuit, subset, _bench()[2], batched=True)
    parallel = run_campaign(circuit, subset, _bench()[2], batched=True,
                            parallel=True, workers=2)
    assert [(_record_core(a), a.solver) for a in serial.records] == \
           [(_record_core(b), b.solver) for b in parallel.records]
    assert (parallel.n_batched_solves, parallel.batch_occupancy,
            parallel.batch_fallbacks) == (
        serial.n_batched_solves, serial.batch_occupancy,
        serial.batch_fallbacks)


def test_batched_campaign_batch_size_one(bench):
    """Degenerate batches (one member each) still reproduce verdicts."""
    circuit, defects, _ = bench
    subset = defects[:12]
    full = run_campaign(circuit, subset, _bench()[2], batched=True)
    tiny = run_campaign(circuit, subset, _bench()[2], batched=True,
                        batch_size=1)
    assert [_record_core(r) for r in full.records] == \
           [_record_core(r) for r in tiny.records]
    assert tiny.n_batched_solves >= full.n_batched_solves


def test_batched_campaign_residual_tol_falls_back_serial(bench):
    """Residual-gated acceptance is a serial-only control flow: every
    member must fall back, and the records must equal the serial delta
    campaign's under the same options."""
    circuit, defects, _ = bench
    subset = defects[:10]
    options = SimOptions(delta_residual_tol=1e-6)
    serial = run_campaign(circuit, subset, _bench()[2], delta=True,
                          options=options)
    batched = run_campaign(circuit, subset, _bench()[2], batched=True,
                           options=options)
    assert batched.n_batched_solves == 0
    assert batched.batch_fallbacks > 0
    assert [(_record_core(a), a.solver) for a in serial.records] == \
           [(_record_core(b), b.solver) for b in batched.records]


def test_batched_campaign_checkpoint_resume(bench, tmp_path):
    circuit, defects, _ = bench
    subset = defects[:20]
    path = tmp_path / "batched.ckpt.jsonl"
    first = run_campaign(circuit, subset, _bench()[2], batched=True,
                         checkpoint=path)
    resumed = run_campaign(circuit, subset, _bench()[2], batched=True,
                           checkpoint=path, resume=True)
    assert resumed.n_resumed == len(subset)
    assert [_record_core(r) for r in first.records] == \
           [_record_core(r) for r in resumed.records]


def test_batched_campaign_telemetry_counters(bench):
    """Batch counters flow through NEWTON_COUNTERS into the metrics
    registry (and from there into the RunReport solver table)."""
    circuit, defects, _ = bench
    subset = defects[:20]
    telemetry = Telemetry.capturing()
    options = SimOptions(telemetry=telemetry)
    result = run_campaign(circuit, subset, _bench()[2], batched=True,
                          options=options)
    counters = telemetry.metrics.snapshot()["counters"]
    assert counters.get("campaign.batched_solves") == result.n_batched_solves
    assert counters.get("campaign.batch_occupancy") == result.batch_occupancy
    assert result.n_batched_solves > 0
    spans = [e for e in telemetry.events()
             if e.get("type") == "span" and e.get("name") == "campaign"]
    assert spans and spans[0]["attrs"]["batched"] is True
    assert spans[0]["attrs"]["n_batched_solves"] == result.n_batched_solves


def test_corpus_witness_has_midbatch_divergence():
    """The committed witness scenario batches a converging member and a
    diverging member together: the diverger's fallback record must be
    field-identical to the serial delta campaign's (same quarantine
    trail, same stats, same solver tag), while the surviving member
    stays batch-solved."""
    scenario = load_scenario(CORPUS_WITNESS)
    engine = ENGINES_BY_NAME["compiled-batched"]
    options = engine.options(VERIFY_OPTIONS)

    built = build_scenario(scenario)
    batched = run_campaign(built.circuit, built.defects,
                           _fresh_oracles(built), options=options,
                           batched=True)
    assert len(built.defects) <= DEFAULT_BATCH_SIZE  # one batch
    assert batched.batch_fallbacks > 0
    counts = batched.solver_counts()
    assert counts.get("batched", 0) > 0

    built2 = build_scenario(scenario)
    serial = run_campaign(built2.circuit, built2.defects,
                          _fresh_oracles(built2), options=options,
                          delta=True)
    assert serial.woodbury_fallbacks > 0
    for a, b in zip(serial.records, batched.records):
        assert _record_core(a) == _record_core(b)
        if b.solver != "batched":
            # fallback and conventional records replay the serial
            # engine's exactly, solver tag included
            assert b.solver == a.solver


def test_corpus_witness_cross_checks_clean():
    scenario = load_scenario(CORPUS_WITNESS)
    engines = tuple(e for e in
                    (ENGINES_BY_NAME["compiled-dense"],
                     ENGINES_BY_NAME["compiled-delta"],
                     ENGINES_BY_NAME["compiled-batched"]))
    result = cross_check(scenario, engines)
    assert result.ok, result.format()
