"""Tests for the SPICE netlist exporter."""


from repro.circuit import (
    Bjt,
    Capacitor,
    Circuit,
    CurrentSource,
    Diode,
    MultiEmitterBjt,
    Prbs,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    VoltageSource,
)
from repro.circuit.spice import to_spice, write_spice
from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import Pipe, inject


def small_circuit() -> Circuit:
    circuit = Circuit("unit")
    circuit.add(VoltageSource("V1", "in", "0", 3.3))
    circuit.add(Resistor("R1", "in", "out", "4k"))
    circuit.add(Capacitor("C1", "out", "0", "10p", ic=0.5))
    circuit.add(Diode("D1", "out", "0"))
    circuit.add(Bjt("Q1", "in", "out", "0"))
    return circuit


class TestDeckStructure:
    def test_header_and_end(self):
        deck = to_spice(small_circuit(), title="hello")
        lines = deck.strip().splitlines()
        assert lines[0] == "* hello"
        assert lines[-1] == ".end"

    def test_element_lines(self):
        deck = to_spice(small_circuit())
        assert "R_R1 in out 4000" in deck
        assert "C_C1 out 0 1e-11 IC=0.5" in deck
        assert "V_V1 in 0 DC 3.3" in deck
        assert "D_D1 out 0 DMOD0" in deck
        assert "Q_Q1 in out 0 QMOD0" in deck

    def test_model_cards_emitted(self):
        deck = to_spice(small_circuit())
        assert ".model QMOD0 NPN(" in deck
        assert ".model DMOD0 D(" in deck

    def test_model_dedup(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "a", "0", 1.0))
        circuit.add(Resistor("RL", "a", "c", 100))
        circuit.add(Bjt("Q1", "c", "a", "0", isat=1e-16))
        circuit.add(Bjt("Q2", "c", "a", "0", isat=1e-16))
        circuit.add(Bjt("Q3", "c", "a", "0", isat=2e-16))
        deck = to_spice(circuit)
        assert deck.count(".model QMOD") == 2

    def test_hierarchical_names_sanitized(self):
        chain = buffer_chain(NOMINAL, n_stages=2)
        deck = to_spice(chain.circuit)
        assert "Q_X1_Q3" in deck
        assert "." not in deck.split("Q_X1_Q3")[1].split()[0]

    def test_multi_emitter_expands_to_parallel(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "b", "0", 1.0))
        circuit.add(Resistor("RC", "b", "c", 100))
        circuit.add(Resistor("RE1", "e1", "0", 100))
        circuit.add(Resistor("RE2", "e2", "0", 100))
        circuit.add(MultiEmitterBjt("Q45", "c", "b", ["e1", "e2"]))
        deck = to_spice(circuit)
        assert "Q_Q45_0 c b e1" in deck
        assert "Q_Q45_1 c b e2" in deck


class TestSourceSpecs:
    def _deck_with(self, waveform) -> str:
        circuit = Circuit()
        circuit.add(VoltageSource("VS", "a", "0", waveform))
        circuit.add(Resistor("RL", "a", "0", 100))
        return to_spice(circuit)

    def test_pulse(self):
        deck = self._deck_with(Pulse(0, 1, delay=1e-9, rise=1e-10,
                                     fall=1e-10, width=4e-9, period=1e-8))
        assert "PULSE(0 1 1e-09 1e-10 1e-10 4e-09 1e-08)" in deck

    def test_sine(self):
        deck = self._deck_with(Sine(1.0, 0.5, 1e6))
        assert "SIN(1 0.5 1e+06" in deck

    def test_pwl(self):
        deck = self._deck_with(Pwl([(0, 0), (1e-9, 1.0)]))
        assert "PWL(0 0 1e-09 1)" in deck

    def test_prbs_expands_to_pwl(self):
        deck = self._deck_with(Prbs(0.0, 1.0, 1e-9, order=7))
        assert "PWL(" in deck

    def test_current_source(self):
        circuit = Circuit()
        circuit.add(CurrentSource("I1", "a", "0", 1e-3))
        circuit.add(Resistor("RL", "a", "0", 100))
        deck = to_spice(circuit)
        assert "I_I1 a 0 DC 0.001" in deck


class TestEndToEnd:
    def test_full_instrumented_chain_exports(self):
        """The flagship circuit — faulty instrumented chain — exports
        without unsupported-component warnings."""
        chain = buffer_chain(NOMINAL, n_stages=8)
        build_shared_monitor(chain.circuit, chain.output_nets)
        faulty = inject(chain.circuit, Pipe("DUT.Q3", 4e3))
        deck = to_spice(faulty)
        assert "unsupported" not in deck
        assert deck.count("\nQ_") > 30
        assert "R_FAULT_PIPE_DUT_Q3" in deck

    def test_write_spice_roundtrip(self, tmp_path):
        path = tmp_path / "deck.cir"
        write_spice(small_circuit(), str(path), title="file test")
        text = path.read_text()
        assert text.startswith("* file test")
        assert text.rstrip().endswith(".end")
