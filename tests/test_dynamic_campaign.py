"""Tests for the dynamic (toggling) fault campaign.

Also documents a genuine finding of the reproduction: many static-
campaign escapes are *inherently* amplitude-undetectable — pair-
transistor pipes either freeze the gate at legal levels (a stuck-at,
logic territory) or produce sub-threshold excursions.  The dynamic
campaign's payoff is the polarity-dependent class: single-sided faults
whose damaged side happens to be high at the static vector.
"""

import pytest

from repro.circuit import VoltageSource
from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor, instrument_pairs
from repro.faults import (
    Bridge,
    FlagOracle,
    Pipe,
    run_campaign,
    run_dynamic_campaign,
)
from repro.testgen import full_adder, synthesize

TECH = NOMINAL


class TestDynamicCampaignBasics:
    @pytest.fixture(scope="class")
    def chain_setup(self):
        chain = buffer_chain(TECH, n_stages=3, frequency=100e6)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                       tech=TECH)
        return chain, monitor

    def test_q3_pipe_caught(self, chain_setup):
        chain, monitor = chain_setup
        result = run_dynamic_campaign(
            chain.circuit, [Pipe("X2.Q3", 4e3)],
            monitor.nets.flag, monitor.nets.flagb,
            cycles=3, points_per_cycle=150)
        assert result.records[0].caught
        assert result.caught_fraction == 1.0

    def test_fault_free_like_mild_defect_passes(self, chain_setup):
        chain, monitor = chain_setup
        result = run_dynamic_campaign(
            chain.circuit, [Pipe("X2.Q3", 50e3)],  # negligible pipe
            monitor.nets.flag, monitor.nets.flagb,
            cycles=3, points_per_cycle=150)
        assert not result.records[0].caught
        assert result.records[0].min_flag_differential > 0

    def test_pair_transistor_pipe_is_stuck_at_not_amplitude(self,
                                                            chain_setup):
        """A severe pipe on a differential-pair transistor reroutes the
        tail permanently: the output freezes at *legal* levels.  The
        amplitude detector rightly stays quiet — this defect belongs to
        the logic-test class (the complementarity the paper argues)."""
        chain, monitor = chain_setup
        defect = Pipe("X2.Q1", 1e3)
        dynamic = run_dynamic_campaign(
            chain.circuit, [defect], monitor.nets.flag,
            monitor.nets.flagb, cycles=3, points_per_cycle=150)
        assert not dynamic.records[0].caught
        # ...but the frozen output is a logic fault at some vector: with
        # the stimulus toggling, op2 never rises — check directly.
        from repro.faults import inject
        from repro.sim import run_cycles

        run = run_cycles(inject(chain.circuit, defect), 100e6, cycles=3,
                         points_per_cycle=150)
        op2 = run.wave("op2").window(10e-9, 30e-9)
        assert op2.extreme_swing() < 0.2 * TECH.swing  # frozen

    def test_format_table(self, chain_setup):
        chain, monitor = chain_setup
        result = run_dynamic_campaign(
            chain.circuit, [Pipe("X2.Q3", 4e3)],
            monitor.nets.flag, monitor.nets.flagb,
            cycles=3, points_per_cycle=150)
        assert "coverage" in result.format()


class TestPolarityDependentFault:
    """The §6.6 scenario: a single-sided fault asserted only when the
    gate output takes one value — static vector misses it, toggling
    catches it."""

    @pytest.fixture(scope="class")
    def adder_setup(self):
        network = full_adder()
        design = synthesize(network, TECH)
        circuit = design.circuit
        # Inputs that toggle A1's output: a at 50 MHz, b at 25 MHz,
        # cin constant low.
        from repro.circuit import Pulse

        for signal, wave_p, wave_n in (
            ("a", Pulse.square(TECH.vlow, TECH.vhigh, 50e6),
             Pulse.square(TECH.vhigh, TECH.vlow, 50e6)),
            ("b", Pulse.square(TECH.vlow, TECH.vhigh, 25e6),
             Pulse.square(TECH.vhigh, TECH.vlow, 25e6)),
        ):
            p, n = design.pair(signal)
            circuit.add(VoltageSource(f"V_{signal}", p, "0", wave_p))
            circuit.add(VoltageSource(f"V_{signal}b", n, "0", wave_n))
        p, n = design.pair("cin")
        circuit.add(VoltageSource("V_cin", p, "0", TECH.vlow))
        circuit.add(VoltageSource("V_cinb", n, "0", TECH.vhigh))
        monitors = instrument_pairs(circuit, design.gate_output_pairs(),
                                    TECH)
        return design, monitors

    def test_static_escape_dynamic_catch(self, adder_setup):
        design, monitors = adder_setup
        flag, flagb = monitors.flag_nets()[0]
        # Leak on A1's op side, asserted when A1 = 0.  The DC vector
        # (a = 0 at t = 0 means... a starts low, b starts low -> A1 = 0
        # asserted!) — pick the leak on the *opb* side instead: asserted
        # when A1 = 1, which never holds at the DC vector (a=b=0).
        defect = Bridge("ab_b", "0", 6e3)

        static = run_campaign(design.circuit, [defect],
                              [FlagOracle(flag, flagb)])
        assert static.records[0].verdicts["detector"] == "pass"

        dynamic = run_dynamic_campaign(
            design.circuit, [defect], flag, flagb,
            frequency=25e6, cycles=2.5, points_per_cycle=300)
        assert dynamic.records[0].caught
