"""Fault-tolerant campaign execution: quarantine, deadlines, resume.

The acceptance scenario for the robustness layer: a campaign containing
a defect that crashes its worker and a defect that hangs it still
completes, every healthy defect gets its normal record, the offenders
are quarantined with reasons — and a campaign killed mid-run resumes
from its JSONL checkpoint to a record-identical result.
"""

import multiprocessing
import os
import time

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    CHECKPOINT_SCHEMA,
    FAIL,
    FlagOracle,
    IddqOracle,
    LogicOracle,
    Pipe,
    defect_key,
    enumerate_defects,
    load_checkpoint,
    run_campaign,
)
from repro.sim import SimOptions

TECH = NOMINAL
WORKERS = 2


class CrashPipe(Pipe):
    """Defect whose solve kills the worker process outright."""

    kind = "crash"

    def apply(self, circuit):
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        raise RuntimeError("crash defect ran in the parent")

    def delta_conductances(self, circuit):
        return None


class HangPipe(Pipe):
    """Defect whose solve sleeps far past any liveness timeout."""

    kind = "hang"

    def apply(self, circuit):
        time.sleep(60.0)

    def delta_conductances(self, circuit):
        return None


@pytest.fixture(scope="module")
def setup():
    chain = buffer_chain(TECH, n_stages=2, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=TECH)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(chain.circuit, kinds=("pipe",),
                                     pipe_resistances=(4e3,)))[:4]
    baseline = run_campaign(chain.circuit, defects, oracles)
    return chain, oracles, defects, baseline


@pytest.mark.timeout(120)
class TestCrashAndHang:
    def test_campaign_survives_crash_and_hang(self, setup):
        chain, oracles, defects, baseline = setup
        mixed = (defects[:2] + [CrashPipe("X1.Q1", 4e3)] + defects[2:3]
                 + [HangPipe("X1.Q2", 4e3)] + defects[3:])
        options = SimOptions(chunk_timeout_s=3.0,
                             chunk_retry_backoff_s=0.0)
        started = time.perf_counter()
        result = run_campaign(chain.circuit, mixed, oracles,
                              options=options, parallel=True,
                              workers=WORKERS, chunk_size=1)
        elapsed = time.perf_counter() - started
        # The 60s hang defect must not have run in the parent.
        assert elapsed < 30.0
        assert len(result.records) == len(mixed)

        # Every healthy defect got its normal verdicts.
        by_key = {defect_key(r.defect): r for r in result.records}
        for record in baseline.records:
            survivor = by_key[defect_key(record.defect)]
            assert survivor.converged
            assert survivor.verdicts == record.verdicts

        # The offenders are quarantined, with reasons saying why.
        quarantined = {r.defect.kind: r for r in result.quarantined()}
        assert set(quarantined) == {"crash", "hang"}
        for record in quarantined.values():
            assert not record.converged
            assert record.solver == "none"
            assert all(v == FAIL for v in record.verdicts.values())
        assert "crash" in quarantined["crash"].quarantine_reason
        assert "timeout" in quarantined["hang"].quarantine_reason

        # coverage_matrix breaks solver failures out per kind.
        matrix = result.coverage_matrix()
        assert tuple(matrix["crash"]["solver_failed"]) == (1, 1)
        assert tuple(matrix["hang"]["solver_failed"]) == (1, 1)
        assert tuple(matrix["pipe"]["solver_failed"]) == (0, 4)
        assert "solver_failed" in result.format()


class TestSolverDeadline:
    def test_generous_deadline_changes_nothing(self, setup):
        chain, oracles, defects, baseline = setup
        result = run_campaign(chain.circuit, defects, oracles,
                              options=SimOptions(solve_deadline_s=60.0))
        assert result.records == baseline.records

    def test_tiny_deadline_quarantines_with_ladder_trail(self, setup):
        chain, oracles, defects, _ = setup
        result = run_campaign(chain.circuit, defects, oracles,
                              options=SimOptions(solve_deadline_s=1e-9))
        assert len(result.quarantined()) == len(defects)
        reason = result.records[0].quarantine_reason
        # The whole degradation ladder is in the trail.
        assert "warm-full" in reason and "cold-retry" in reason
        assert "budget" in reason
        matrix = result.coverage_matrix()["pipe"]
        n = len(defects)
        assert tuple(matrix["solver_failed"]) == (n, n)
        # Paper-faithful headline: failures still count as caught.
        assert tuple(matrix["any"]) == (n, n)

    def test_delta_path_records_delta_rung(self, setup):
        chain, oracles, defects, _ = setup
        result = run_campaign(chain.circuit, defects, oracles, delta=True,
                              options=SimOptions(solve_deadline_s=1e-9))
        assert len(result.quarantined()) == len(defects)
        assert result.records[0].quarantine_reason.startswith("delta:")

    def test_escalated_options_grow_iteration_cap(self):
        options = SimOptions(max_nr_iterations=100,
                             retry_iteration_scale=2.5)
        assert options.escalated().max_nr_iterations == 250
        assert options.escalated().reltol == options.reltol


class TestCheckpointResume:
    def test_roundtrip_is_record_identical(self, setup, tmp_path):
        chain, oracles, defects, baseline = setup
        full = str(tmp_path / "full.jsonl")
        result = run_campaign(chain.circuit, defects, oracles,
                              checkpoint=full)
        assert result.records == baseline.records
        entries = load_checkpoint(full)
        assert set(entries) == {defect_key(d) for d in defects}

        # Simulate a crash: keep the header + two records, plus a torn
        # final line the killed process never finished writing.
        with open(full, encoding="utf-8") as handle:
            lines = handle.readlines()
        partial = str(tmp_path / "partial.jsonl")
        with open(partial, "w", encoding="utf-8") as handle:
            handle.writelines(lines[:3])
            handle.write('{"type": "record", "torn')

        resumed = run_campaign(chain.circuit, defects, oracles,
                               checkpoint=partial, resume=True)
        assert resumed.records == baseline.records
        assert resumed.n_resumed == 2
        # The resumed run healed its own checkpoint: complete again.
        assert set(load_checkpoint(partial)) == set(entries)

        # Resuming the now-complete checkpoint solves nothing anew.
        again = run_campaign(chain.circuit, defects, oracles,
                             checkpoint=partial, resume=True)
        assert again.records == baseline.records
        assert again.n_resumed == len(defects)

    def test_kill_mid_run_then_resume(self, setup, tmp_path):
        chain, oracles, defects, baseline = setup
        path = str(tmp_path / "killed.jsonl")

        class Killed(RuntimeError):
            pass

        def die_after_two(done, total, elapsed):
            if done == 2:
                raise Killed

        with pytest.raises(Killed):
            run_campaign(chain.circuit, defects, oracles, checkpoint=path,
                         progress=die_after_two)
        assert len(load_checkpoint(path)) == 2

        resumed = run_campaign(chain.circuit, defects, oracles,
                               checkpoint=path, resume=True)
        assert resumed.records == baseline.records
        assert resumed.n_resumed == 2

    def test_resume_from_separate_file(self, setup, tmp_path):
        chain, oracles, defects, baseline = setup
        old = str(tmp_path / "old.jsonl")
        new = str(tmp_path / "new.jsonl")
        run_campaign(chain.circuit, defects, oracles, checkpoint=old)
        carried = run_campaign(chain.circuit, defects, oracles,
                               checkpoint=new, resume=old)
        assert carried.records == baseline.records
        assert carried.n_resumed == len(defects)
        # The carried-forward records were replayed into the new file.
        assert set(load_checkpoint(new)) == {defect_key(d)
                                             for d in defects}

    def test_resume_true_requires_checkpoint(self, setup):
        chain, oracles, defects, _ = setup
        with pytest.raises(ValueError, match="checkpoint"):
            run_campaign(chain.circuit, defects, oracles, resume=True)

    def test_loader_tolerates_garbage(self, tmp_path):
        path = str(tmp_path / "garbage.jsonl")
        with open(path, "w", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write('{"type": "header", "schema": '
                         f'{CHECKPOINT_SCHEMA}}}\n')
            handle.write('["a", "list", "entry"]\n')
            handle.write('{"type": "record"}\n')  # no key
            handle.write('{"type": "rec')
        assert load_checkpoint(path) == {}
        assert load_checkpoint(str(tmp_path / "missing.jsonl")) == {}

    def test_quarantined_records_checkpoint_and_resume(self, setup,
                                                       tmp_path):
        chain, oracles, defects, _ = setup
        path = str(tmp_path / "quarantine.jsonl")
        options = SimOptions(solve_deadline_s=1e-9)
        first = run_campaign(chain.circuit, defects, oracles,
                             options=options, checkpoint=path)
        # A resumed run must not pay for the quarantined defects again —
        # their (all-FAIL, reason-carrying) records come from the file.
        resumed = run_campaign(chain.circuit, defects, oracles,
                               options=options, checkpoint=path,
                               resume=True)
        assert resumed.n_resumed == len(defects)
        assert resumed.records == first.records
        assert all(r.quarantined for r in resumed.records)
        assert resumed.records[0].quarantine_reason == \
            first.records[0].quarantine_reason
