"""Campaign integration with the content-addressed result store.

The acceptance scenario for the caching layer: a cold campaign misses
and writes every record; a warm re-run — even from rebuilt circuit
objects, as a fresh process would hold — serves every defect from the
store *field-identically*; namespaces and electrical changes partition
the cache; quarantined records never poison it; and the checkpoint
fingerprint refuses resumes against a different campaign.
"""

from dataclasses import replace

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    CheckpointMismatch,
    FlagOracle,
    IddqOracle,
    LogicOracle,
    checkpoint_header,
    defect_key,
    enumerate_defects,
    run_campaign,
)
from repro.sim import SimOptions
from repro.sim.mna import CACHE_STATS
from repro.sim.options import DEFAULT_OPTIONS
from repro.store import ResultStore
from repro.telemetry import RunReport, Telemetry

TECH = NOMINAL


def _setup(stages=2):
    chain = buffer_chain(TECH, n_stages=stages, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=TECH)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(chain.circuit, kinds=("pipe",),
                                     pipe_resistances=(4e3,)))[:4]
    return chain, oracles, defects


@pytest.fixture(scope="module")
def setup():
    return _setup()


class TestStoreRoundTrip:
    def test_cold_then_warm_is_field_identical(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        cold = run_campaign(chain.circuit, defects, oracles, store=store)
        assert cold.n_store_hits == 0
        assert cold.n_store_misses == len(defects)
        assert cold.n_store_puts == len(defects)

        warm = run_campaign(chain.circuit, defects, oracles, store=store)
        assert warm.n_store_hits == len(defects)
        assert warm.n_store_misses == 0
        assert warm.n_store_puts == 0
        # FaultRecord equality covers every compared field — verdicts,
        # solver, iterations, quarantine state.
        assert warm.records == cold.records
        for fresh, cached in zip(cold.records, warm.records):
            assert cached.solver == fresh.solver
            assert cached.newton_iterations == fresh.newton_iterations
            assert cached.verdicts == fresh.verdicts

    def test_store_path_is_coerced(self, setup, tmp_path):
        chain, oracles, defects = setup
        path = str(tmp_path / "store")
        cold = run_campaign(chain.circuit, defects, oracles, store=path)
        warm = run_campaign(chain.circuit, defects, oracles, store=path)
        assert cold.n_store_puts == len(defects)
        assert warm.n_store_hits == len(defects)

    def test_cross_campaign_reuse_with_rebuilt_objects(self, setup,
                                                       tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        cold = run_campaign(chain.circuit, defects, oracles, store=store)

        # A second campaign built from scratch — new Circuit, new
        # oracle objects, new Defect instances — as another process or
        # CLI invocation would hold.
        chain2, oracles2, defects2 = _setup()
        assert chain2.circuit is not chain.circuit
        warm = run_campaign(chain2.circuit, defects2, oracles2,
                            store=ResultStore(tmp_path / "store"))
        assert warm.n_store_hits == len(defects)
        assert warm.records == cold.records

    def test_namespace_partitions_the_cache(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        run_campaign(chain.circuit, defects, oracles, store=store,
                     store_namespace="engine-a")
        other = run_campaign(chain.circuit, defects, oracles, store=store,
                             store_namespace="engine-b")
        assert other.n_store_hits == 0  # engine-a's records invisible
        again = run_campaign(chain.circuit, defects, oracles, store=store,
                             store_namespace="engine-b")
        assert again.n_store_hits == len(defects)

    def test_electrical_change_misses(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        run_campaign(chain.circuit, defects, oracles, store=store)
        changed = run_campaign(chain.circuit, defects, oracles,
                               options=SimOptions(gmin=1e-10), store=store)
        assert changed.n_store_hits == 0

    def test_execution_only_option_change_still_hits(self, setup,
                                                     tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        run_campaign(chain.circuit, defects, oracles, store=store)
        warm = run_campaign(chain.circuit, defects, oracles,
                            options=SimOptions(chunk_timeout_s=30.0),
                            store=store)
        assert warm.n_store_hits == len(defects)

    def test_quarantined_records_are_not_cached(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        starved = run_campaign(chain.circuit, defects, oracles,
                               options=SimOptions(solve_deadline_s=1e-9),
                               store=store)
        assert len(starved.quarantined()) == len(defects)
        # A transient failure (deadline, crashed worker) must not
        # poison the cache: nothing was written.
        assert starved.n_store_puts == 0
        assert len(store) == 0
        retry = run_campaign(chain.circuit, defects, oracles,
                             options=SimOptions(solve_deadline_s=1e-9),
                             store=store)
        assert retry.n_store_hits == 0

    def test_parallel_campaign_uses_the_store(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        cold = run_campaign(chain.circuit, defects, oracles, store=store,
                            parallel=True, workers=2, chunk_size=2)
        warm = run_campaign(chain.circuit, defects, oracles, store=store,
                            parallel=True, workers=2, chunk_size=2)
        assert warm.n_store_hits == len(defects)
        assert warm.records == cold.records

    def test_checkpoint_and_store_compose(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        path = str(tmp_path / "ckpt.jsonl")
        run_campaign(chain.circuit, defects, oracles, store=store)
        # Resumed-from-checkpoint records take precedence; the rest
        # come from the store; nothing solves fresh.
        warm = run_campaign(chain.circuit, defects, oracles, store=store,
                            checkpoint=path)
        assert warm.n_store_hits == len(defects)
        resumed = run_campaign(chain.circuit, defects, oracles,
                               store=store, checkpoint=path, resume=True)
        assert resumed.n_resumed == len(defects)
        assert resumed.n_store_hits == 0  # checkpoint satisfied them all
        assert resumed.records == warm.records


class TestStoreTelemetry:
    def test_span_attrs_and_counters(self, setup, tmp_path):
        chain, oracles, defects = setup
        store = ResultStore(tmp_path / "store")
        tel = Telemetry.capturing()
        options = replace(DEFAULT_OPTIONS, telemetry=tel)
        run_campaign(chain.circuit, defects, oracles, options=options,
                     store=store)
        warm_tel = Telemetry.capturing()
        run_campaign(chain.circuit, defects, oracles,
                     options=replace(DEFAULT_OPTIONS, telemetry=warm_tel),
                     store=store)
        cold_attrs = RunReport.from_telemetry(tel).named("campaign")[0][
            "attrs"]
        warm_attrs = RunReport.from_telemetry(warm_tel).named(
            "campaign")[0]["attrs"]
        assert cold_attrs["n_store_misses"] == len(defects)
        assert cold_attrs["n_store_puts"] == len(defects)
        assert warm_attrs["n_store_hits"] == len(defects)
        counters = warm_tel.metrics.snapshot()["counters"]
        assert counters["campaign.store_hits"] == len(defects)

    def test_untraced_store_counters_absent_without_store(self, setup):
        # The serial-equals-parallel metrics invariant depends on the
        # store counters only appearing when a store is in play.
        chain, oracles, defects = setup
        tel = Telemetry.capturing()
        run_campaign(chain.circuit, defects, oracles,
                     options=replace(DEFAULT_OPTIONS, telemetry=tel))
        counters = tel.metrics.snapshot()["counters"]
        assert "campaign.store_hits" not in counters
        attrs = RunReport.from_telemetry(tel).named("campaign")[0]["attrs"]
        assert "n_store_hits" not in attrs


class TestWorkerCacheStats:
    def test_serial_campaign_reports_cache_delta(self, setup):
        chain, oracles, defects = setup
        result = run_campaign(chain.circuit, defects, oracles)
        assert set(result.mna_cache_stats) == set(CACHE_STATS)
        assert result.mna_cache_stats["compiled_builds"] >= 1

    def test_parallel_campaign_aggregates_worker_deltas(self, setup):
        chain, oracles, defects = setup
        result = run_campaign(chain.circuit, defects, oracles,
                              parallel=True, workers=2, chunk_size=2)
        assert set(result.mna_cache_stats) == set(CACHE_STATS)
        # The workers' structure-cache activity is visible in the
        # parent's aggregate even though CACHE_STATS is per-process.
        total = sum(result.mna_cache_stats.values())
        assert total >= len(defects)

    def test_traced_span_carries_merged_delta(self, setup):
        chain, oracles, defects = setup
        tel = Telemetry.capturing()
        run_campaign(chain.circuit, defects, oracles,
                     options=replace(DEFAULT_OPTIONS, telemetry=tel),
                     parallel=True, workers=2, chunk_size=2)
        attrs = RunReport.from_telemetry(tel).named("campaign")[0]["attrs"]
        assert set(attrs["mna_cache_delta"]) == set(CACHE_STATS)


class TestCheckpointFingerprint:
    def test_header_carries_the_fingerprint(self, setup, tmp_path):
        chain, oracles, defects = setup
        path = str(tmp_path / "ckpt.jsonl")
        run_campaign(chain.circuit, defects, oracles, checkpoint=path)
        header = checkpoint_header(path)
        assert header is not None
        assert len(header["fingerprint"]) == 64

    def test_same_campaign_resumes(self, setup, tmp_path):
        chain, oracles, defects = setup
        path = str(tmp_path / "ckpt.jsonl")
        baseline = run_campaign(chain.circuit, defects, oracles,
                                checkpoint=path)
        resumed = run_campaign(chain.circuit, defects, oracles,
                               checkpoint=path, resume=True)
        assert resumed.n_resumed == len(defects)
        assert resumed.records == baseline.records

    def test_mismatched_resume_is_refused(self, setup, tmp_path):
        chain, oracles, defects = setup
        path = str(tmp_path / "ckpt.jsonl")
        run_campaign(chain.circuit, defects, oracles, checkpoint=path)
        with pytest.raises(CheckpointMismatch):
            run_campaign(chain.circuit, defects, oracles,
                         options=SimOptions(gmin=1e-10),
                         checkpoint=path, resume=True)

    def test_mismatched_append_is_refused_too(self, setup, tmp_path):
        # Even without --resume, appending a different campaign's
        # records to an existing checkpoint would corrupt it.
        chain, oracles, defects = setup
        path = str(tmp_path / "ckpt.jsonl")
        run_campaign(chain.circuit, defects, oracles, checkpoint=path)
        with pytest.raises(CheckpointMismatch):
            run_campaign(chain.circuit, defects, oracles,
                         options=SimOptions(gmin=1e-10), checkpoint=path)

    def test_cross_campaign_keys_may_collide_but_fingerprints_refuse(
            self, setup, tmp_path):
        # Two campaigns over the same chain with different solver
        # options share defect_keys — exactly the collision the
        # fingerprint exists to catch.
        chain, oracles, defects = setup
        keys_a = {defect_key(d) for d in defects}
        chain2, oracles2, defects2 = _setup()
        assert {defect_key(d) for d in defects2} == keys_a

        path = str(tmp_path / "ckpt.jsonl")
        run_campaign(chain.circuit, defects, oracles, checkpoint=path,
                     options=SimOptions(gmin=1e-12))
        with pytest.raises(CheckpointMismatch, match="fingerprint"):
            run_campaign(chain2.circuit, defects2, oracles2,
                         checkpoint=path, resume=True,
                         options=SimOptions(gmin=1e-10))

    def test_legacy_headerless_checkpoint_still_resumes(self, setup,
                                                        tmp_path):
        chain, oracles, defects = setup
        modern = tmp_path / "modern.jsonl"
        run_campaign(chain.circuit, defects, oracles,
                     checkpoint=str(modern))
        # Strip the header: what a pre-fingerprint (or hand-rolled)
        # checkpoint looks like.
        lines = modern.read_text().splitlines(keepends=True)
        legacy = tmp_path / "legacy.jsonl"
        legacy.write_text("".join(
            line for line in lines if '"type": "header"' not in line
            and '"header"' not in line.split(",")[0]))
        resumed = run_campaign(chain.circuit, defects, oracles,
                               checkpoint=str(legacy), resume=True)
        assert resumed.n_resumed == len(defects)
