"""Tests of the Fig. 3 buffer chain: topology, levels, delay, healing."""

import pytest

from repro.circuit import Resistor
from repro.cml import (
    FIG3_INSTANCES,
    FIG3_OUTPUTS,
    NOMINAL,
    buffer_chain,
    differential_sine,
    differential_square,
)
from repro.sim import differential_crossings, run_cycles

TECH = NOMINAL


@pytest.fixture(scope="module")
def nominal_result():
    chain = buffer_chain(TECH, frequency=100e6)
    result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                        points_per_cycle=400)
    return chain, result


class TestChainTopology:
    def test_paper_instance_names(self):
        chain = buffer_chain(TECH)
        assert tuple(i.name for i in chain.instances) == FIG3_INSTANCES

    def test_paper_output_nets(self):
        chain = buffer_chain(TECH)
        assert tuple(p for p, _ in chain.output_nets) == FIG3_OUTPUTS
        assert chain.output_nets[2] == ("op", "opb")

    def test_dut_is_third_stage(self):
        chain = buffer_chain(TECH)
        assert chain.dut.name == "DUT"
        assert chain.instances[2] is chain.dut

    def test_dut_q3_addressable(self):
        chain = buffer_chain(TECH)
        q3 = chain.circuit["DUT.Q3"]
        assert q3.net("b") == "vcs"
        assert q3.net("e") == "0"

    def test_stages_connected_in_series(self):
        chain = buffer_chain(TECH)
        for first, second in zip(chain.instances, chain.instances[1:]):
            assert second.port("a") == first.port("op")
            assert second.port("ab") == first.port("opb")

    def test_taps_order(self):
        chain = buffer_chain(TECH)
        assert chain.taps() == ["va"] + list(FIG3_OUTPUTS)

    def test_custom_length(self):
        chain = buffer_chain(TECH, n_stages=4)
        assert len(chain) == 4
        assert [p for p, _ in chain.output_nets] == ["op1", "op2", "op3",
                                                     "op4"]

    def test_bad_length_rejected(self):
        with pytest.raises(ValueError):
            buffer_chain(TECH, n_stages=0)

    def test_mismatched_names_rejected(self):
        with pytest.raises(ValueError, match="match n_stages"):
            buffer_chain(TECH, n_stages=3, instance_names=["A", "B"])

    def test_validates_clean(self):
        assert buffer_chain(TECH).circuit.validate() == []


class TestChainBehaviour:
    def test_every_stage_at_nominal_levels(self, nominal_result):
        chain, result = nominal_result
        for net, _ in chain.output_nets:
            wave = result.wave(net).window(10e-9, 25e-9)
            vlow, vhigh = wave.levels()
            assert vhigh == pytest.approx(TECH.vhigh, abs=0.01)
            assert vlow == pytest.approx(TECH.vlow, abs=0.02)

    def test_outputs_complementary(self, nominal_result):
        chain, result = nominal_result
        diff = result.differential("op", "opb").window(10e-9, 25e-9)
        assert abs(diff.values).max() == pytest.approx(TECH.swing, rel=0.1)

    def test_per_stage_delay_near_paper(self, nominal_result):
        """The paper reports ~53 ps per stage; our calibration targets
        ~40-60 ps so relative (healing) claims carry over."""
        chain, result = nominal_result
        t_in = differential_crossings(result.wave("va"), result.wave("vab"),
                                      "rise", after=10e-9)[0]
        previous = t_in
        delays = []
        for net_p, net_n in chain.output_nets[:-1]:  # last stage unloaded
            crossing = [t for t in differential_crossings(
                result.wave(net_p), result.wave(net_n), "rise")
                if t > previous]
            delays.append(crossing[0] - previous)
            previous = crossing[0]
        for delay in delays[1:]:  # first stage sees the ideal source
            assert 30e-12 < delay < 70e-12

    def test_sine_stimulus_regenerates_to_square(self):
        chain = buffer_chain(TECH, frequency=100e6,
                             stimulus=differential_sine(TECH, 100e6))
        result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                            points_per_cycle=400)
        # Deep in the chain the limiting amplifiers square the sine up:
        # the output spends most of its time on the rails.
        wave = result.wave("op6").window(10e-9, 25e-9)
        vlow, vhigh = wave.levels()
        near_rail = ((wave.values > vhigh - 0.03) |
                     (wave.values < vlow + 0.03)).mean()
        assert near_rail > 0.75

    def test_differential_square_antiphase(self):
        wave_p, wave_n = differential_square(TECH, 1e9)
        for t in (0.1e-9, 0.3e-9, 0.62e-9, 0.87e-9):
            assert wave_p.value(t) + wave_n.value(t) == pytest.approx(
                TECH.vhigh + TECH.vlow, abs=1e-9)


class TestPipePhenomenology:
    """The paper's core observation, ahead of the full fault framework:
    a C-E pipe on the DUT current source doubles the swing locally and
    heals downstream (Fig. 4)."""

    @pytest.fixture(scope="class")
    def piped_result(self):
        chain = buffer_chain(TECH, frequency=100e6)
        q3 = chain.circuit["DUT.Q3"]
        chain.circuit.add(Resistor("PIPE", q3.net("c"), q3.net("e"), 4e3))
        result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                            points_per_cycle=400)
        return chain, result

    def test_swing_nearly_doubles_at_dut(self, piped_result):
        _, result = piped_result
        swing = result.wave("op").window(10e-9, 25e-9).swing()
        assert 1.7 * TECH.swing < swing < 2.7 * TECH.swing

    def test_heals_by_stage_six(self, piped_result):
        _, result = piped_result
        swing6 = result.wave("op6").window(10e-9, 25e-9).swing()
        assert swing6 == pytest.approx(TECH.swing, rel=0.05)

    def test_vhigh_unaffected(self, piped_result):
        _, result = piped_result
        _, vhigh = result.wave("op").window(10e-9, 25e-9).levels()
        assert vhigh == pytest.approx(TECH.vhigh, abs=0.01)
