"""Tests for the Early-effect (VAF) extension of the BJT model."""

import pytest

from repro.circuit import Bjt, Circuit, Resistor, VoltageSource
from repro.sim import kcl_residuals, operating_point


def common_base_ic(vce: float, vaf: float) -> float:
    """Collector current of a fixed-VBE transistor at a forced VCE."""
    circuit = Circuit()
    circuit.add(VoltageSource("VB", "b", "0", 0.85))
    circuit.add(VoltageSource("VC", "c", "0", vce))
    circuit.add(Bjt("Q1", "c", "b", "0", isat=4e-19, vaf=vaf))
    op = operating_point(circuit)
    return op.operating_info("Q1")["ic"]


class TestEarlyEffect:
    def test_disabled_by_default(self):
        assert Bjt("Q", "c", "b", "e").vaf == 0.0

    def test_negative_vaf_rejected(self):
        with pytest.raises(ValueError):
            Bjt("Q", "c", "b", "e", vaf=-10)

    def test_ic_increases_with_vce(self):
        """Finite output resistance: IC grows ~linearly with VCE."""
        low = common_base_ic(1.0, vaf=20.0)
        high = common_base_ic(3.0, vaf=20.0)
        assert high > low
        # Slope consistent with the Early model: IC ~ (1 + VCE/VAF).
        expected_ratio = (1 + (3.0 - 0.85) / 20.0) / (1 + (1.0 - 0.85) / 20.0)
        assert high / low == pytest.approx(expected_ratio, rel=0.03)

    def test_infinite_vaf_flat(self):
        low = common_base_ic(1.0, vaf=0.0)
        high = common_base_ic(3.0, vaf=0.0)
        assert high == pytest.approx(low, rel=1e-6)

    def test_kcl_with_vaf(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 5.0))
        circuit.add(Resistor("RB", "vcc", "b", 200e3))
        circuit.add(Resistor("RC", "vcc", "c", 1000))
        circuit.add(Bjt("Q1", "c", "b", "0", isat=1e-16, vaf=30.0))
        op = operating_point(circuit)
        residuals = kcl_residuals(circuit, op)
        assert max(abs(r) for r in residuals.values()) < 1e-7

    def test_terminal_currents_sum_to_zero(self):
        circuit = Circuit()
        circuit.add(VoltageSource("VB", "b", "0", 0.85))
        circuit.add(VoltageSource("VC", "c", "0", 2.0))
        circuit.add(Bjt("Q1", "c", "b", "0", isat=4e-19, vaf=15.0))
        op = operating_point(circuit)
        info = op.operating_info("Q1")
        assert info["ic"] + info["ib"] + info["ie"] == pytest.approx(
            0.0, abs=1e-12)

    def test_saturation_remains_well_posed(self):
        """Deep saturation (large forward vbc) must still converge with
        the clamped Early factor."""
        circuit = Circuit()
        circuit.add(VoltageSource("VB", "b", "0", 0.9))
        circuit.add(Resistor("RC", "b", "c", 50.0))  # collector near base
        circuit.add(Bjt("Q1", "c", "b", "0", isat=4e-19, vaf=10.0))
        op = operating_point(circuit)
        assert 0.0 < op.voltage("c") <= 0.9

    def test_vaf_survives_spice_roundtrip(self):
        from repro.circuit import from_spice, to_spice

        circuit = Circuit()
        circuit.add(VoltageSource("VB", "b", "0", 0.85))
        circuit.add(Resistor("RC", "b", "c", 100))
        circuit.add(Bjt("Q1", "c", "b", "0", vaf=25.0))
        parsed = from_spice(to_spice(circuit))
        transistors = [c for c in parsed if isinstance(c, Bjt)]
        assert transistors[0].vaf == pytest.approx(25.0)
