"""Validation of section 2's CML circuit-design claims.

"Current steering limits dI/dt in the supply rails irrespective of
circuit activity" and "small output swings provide a reduction in
dynamic power consumption" — measured on the simulated rails.
"""

import numpy as np
import pytest

from repro.cml import NOMINAL, buffer_chain, differential_prbs
from repro.sim import operating_point, run_cycles, total_supply_power

TECH = NOMINAL


class TestSupplyCurrentSteering:
    def test_supply_current_ripple_small_while_toggling(self):
        """The tail currents are steered, not switched: the vgnd supply
        current ripples by only a few percent while every stage toggles
        at 100 MHz."""
        chain = buffer_chain(TECH, n_stages=4, frequency=100e6)
        result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                            points_per_cycle=400)
        supply = result.branch_wave("VGND").window(10e-9, 25e-9)
        mean = float(np.mean(supply.values))
        ripple = supply.extreme_swing()
        assert abs(mean) > 1e-3  # ~0.5 mA per stage flows continuously
        assert ripple < 0.15 * abs(mean)

    def test_supply_current_independent_of_activity(self):
        """Idle (DC inputs) and fully toggling chains draw the same
        average supply current — CML's signature property."""
        chain = buffer_chain(TECH, n_stages=4, frequency=100e6)
        idle = operating_point(chain.circuit)
        idle_current = abs(idle.branch_current("VGND"))

        result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                            points_per_cycle=400)
        active = result.branch_wave("VGND").window(10e-9, 25e-9)
        active_current = abs(float(np.mean(active.values)))
        assert active_current == pytest.approx(idle_current, rel=0.05)

    def test_static_power_matches_design(self):
        """Per-gate power ~ vgnd * itail (no dynamic CV^2 term of note)."""
        chain = buffer_chain(TECH, n_stages=4)
        op = operating_point(chain.circuit)
        power = total_supply_power(chain.circuit, op)
        expected = 4 * TECH.vgnd * TECH.itail
        assert power == pytest.approx(expected, rel=0.1)

    def test_random_data_same_draw_as_clock_pattern(self):
        """PRBS data and a periodic square draw indistinguishable supply
        current — 'irrespective of circuit activity'."""
        def mean_current(stimulus):
            chain = buffer_chain(TECH, n_stages=3, frequency=100e6,
                                 stimulus=stimulus)
            result = run_cycles(chain.circuit, 100e6, cycles=3,
                                points_per_cycle=300)
            wave = result.branch_wave("VGND").window(10e-9, 30e-9)
            return abs(float(np.mean(wave.values)))

        from repro.cml import differential_square

        square = mean_current(differential_square(TECH, 100e6))
        prbs = mean_current(differential_prbs(TECH, 10e-9, seed=5))
        assert prbs == pytest.approx(square, rel=0.03)
