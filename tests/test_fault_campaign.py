"""Tests for the fault-campaign API (defects × oracles)."""

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    FAIL,
    PASS,
    FlagOracle,
    IddqOracle,
    LogicOracle,
    Pipe,
    TerminalShort,
    enumerate_defects,
    run_campaign,
)

TECH = NOMINAL


@pytest.fixture(scope="module")
def campaign_setup():
    chain = buffer_chain(TECH, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=TECH)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    return chain, oracles


class TestOracles:
    def test_flag_oracle_verdicts(self, campaign_setup):
        chain, oracles = campaign_setup
        result = run_campaign(chain.circuit, [Pipe("X2.Q3", 4e3)], oracles)
        record = result.records[0]
        assert record.verdicts["detector"] == FAIL
        assert record.verdicts["logic"] == PASS  # parametric, logic-clean

    def test_logic_oracle_catches_stuck_at(self, campaign_setup):
        """With the static input low, a C-E short on Q1 (whose collector
        is the complement output) flips the observed polarity — a
        stuck-at the single-vector DC logic test can see.  (The dual
        short on Q2 needs the opposite input vector, which is exactly
        why §6.6 asks for toggling stimulus.)"""
        chain, oracles = campaign_setup
        result = run_campaign(chain.circuit,
                              [TerminalShort("X2.Q1", "c", "e")], oracles)
        assert result.records[0].verdicts["logic"] == FAIL

    def test_iddq_oracle_catches_pipe(self, campaign_setup):
        chain, oracles = campaign_setup
        result = run_campaign(chain.circuit, [Pipe("X1.Q3", 2e3)], oracles)
        assert result.records[0].verdicts["iddq"] == FAIL

    def test_unprepared_oracle_raises(self):
        from repro.sim import operating_point

        chain = buffer_chain(TECH, n_stages=1)
        solution = operating_point(chain.circuit)
        with pytest.raises(RuntimeError):
            IddqOracle().judge(solution)
        with pytest.raises(RuntimeError):
            LogicOracle(chain.output_nets).judge(solution)


class TestCampaign:
    def test_matrix_shape_and_totals(self, campaign_setup):
        chain, oracles = campaign_setup
        defects = list(enumerate_defects(chain.circuit, kinds=("pipe",),
                                         pipe_resistances=(4e3,)))
        result = run_campaign(chain.circuit, defects, oracles)
        matrix = result.coverage_matrix()
        assert set(matrix) == {"pipe"}
        for oracle in ("logic", "detector", "iddq", "any"):
            caught, total = matrix["pipe"][oracle]
            assert total == len(defects)
            assert 0 <= caught <= total

    def test_any_is_union(self, campaign_setup):
        chain, oracles = campaign_setup
        defects = list(enumerate_defects(
            chain.circuit, kinds=("pipe", "terminal-short"),
            pipe_resistances=(4e3,)))
        result = run_campaign(chain.circuit, defects, oracles)
        matrix = result.coverage_matrix()
        for kind, row in matrix.items():
            best_single = max(row[name][0] for name in
                              ("logic", "detector", "iddq"))
            assert row["any"][0] >= best_single

    def test_complementarity_story(self, campaign_setup):
        """The paper's argument: the detector catches (current-source)
        pipes that logic testing passes, and logic testing catches
        stuck-at-class shorts the detector passes."""
        chain, oracles = campaign_setup
        defects = ([Pipe(f"X{i}.Q3", 4e3) for i in (1, 2, 3)]
                   + [TerminalShort(f"X{i}.Q1", "c", "e")
                      for i in (1, 2, 3)])
        result = run_campaign(chain.circuit, defects, oracles)
        matrix = result.coverage_matrix()
        assert matrix["pipe"]["detector"][0] == 3
        assert matrix["pipe"]["logic"][0] == 0
        assert matrix["terminal-short"]["logic"][0] >= 2

    def test_escapes_listed(self, campaign_setup):
        chain, oracles = campaign_setup
        # A mild pipe on a pair transistor escapes every DC oracle.
        defects = [Pipe("X2.Q1", 20e3)]
        result = run_campaign(chain.circuit, defects, oracles)
        assert len(result.escapes()) == 1

    def test_format_contains_matrix(self, campaign_setup):
        chain, oracles = campaign_setup
        result = run_campaign(chain.circuit, [Pipe("X1.Q3", 4e3)], oracles)
        text = result.format()
        assert "detector" in text and "iddq" in text and "any" in text
