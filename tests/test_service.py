"""The asyncio campaign service: jobs, streaming, caching, TCP.

End-to-end acceptance for the service layer, all through ``asyncio.run``
(no async test plugin needed): in-process submit → progress → result;
a warm resubmission served almost entirely from the store; the
JSON-lines TCP front end round-tripping the same payloads; concurrent
clients through the load-test harness; and the JobSpec wire format.
"""

import asyncio

import pytest

from repro.parallel import balanced_chunk_size
from repro.service import (
    CampaignService,
    JobSpec,
    ServiceError,
    build_campaign_job,
    run_load_test,
    submit_and_stream,
)
from repro.store import ResultStore, campaign_fingerprint

SMALL = dict(stages=2, kinds=("pipe",), limit=4)


class TestJobSpec:
    def test_round_trips_through_dict(self):
        spec = JobSpec(stages=4, kinds=("pipe", "terminal-short"),
                       pipe_resistances=(2e3,), limit=10, parallel=True,
                       namespace="tenant-a", tags={"ticket": "T-17"})
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert isinstance(clone.kinds, tuple)
        assert isinstance(clone.pipe_resistances, tuple)

    def test_unknown_fields_are_rejected(self):
        with pytest.raises(ValueError, match="unknown JobSpec field"):
            JobSpec.from_dict({"stages": 2, "stgaes": 3})

    def test_build_is_deterministic(self):
        circuit_a, defects_a, oracles_a, options_a = \
            build_campaign_job(JobSpec(**SMALL))
        circuit_b, defects_b, oracles_b, options_b = \
            build_campaign_job(JobSpec(**SMALL))
        assert campaign_fingerprint(circuit_a, options_a, oracles_a) == \
            campaign_fingerprint(circuit_b, options_b, oracles_b)
        assert len(defects_a) == len(defects_b) == 4

    def test_monitor_sites_grow_the_catalog(self):
        spec = JobSpec(stages=2, kinds=("pipe",))
        _, functional, _, _ = build_campaign_job(spec)
        spec.include_monitor_sites = True
        _, with_monitor, _, _ = build_campaign_job(spec)
        assert len(with_monitor) > len(functional)


class TestInProcessService:
    def test_submit_stream_result(self):
        async def scenario():
            service = CampaignService()
            job = await service.submit(JobSpec(**SMALL))
            events = [event async for event in job.stream()]
            result = await job.wait()
            return service, job, events, result

        service, job, events, result = asyncio.run(scenario())
        assert job.status == "done"
        assert len(result.records) == 4
        assert [e["done"] for e in events] == [1, 2, 3, 4]
        assert all(e["event"] == "progress" and e["total"] == 4
                   for e in events)
        stats = service.stats()
        assert stats["jobs_submitted"] == stats["jobs_completed"] == 1
        assert stats["jobs_failed"] == 0
        assert stats["queue_depth"] == 0

    def test_warm_resubmit_hits_the_store(self, tmp_path):
        async def scenario():
            service = CampaignService(store=str(tmp_path / "store"))
            cold = await service.run(JobSpec(**SMALL))
            warm = await service.run(JobSpec(**SMALL))
            return cold, warm

        cold, warm = asyncio.run(scenario())
        assert cold.n_store_hits == 0
        hit_rate = warm.n_store_hits / len(warm.records)
        assert hit_rate >= 0.95
        assert warm.records == cold.records

    def test_dict_specs_and_namespaces(self, tmp_path):
        async def scenario():
            service = CampaignService(store=ResultStore(tmp_path / "s"))
            await service.run({**SMALL, "kinds": list(SMALL["kinds"]),
                               "namespace": "a"})
            other = await service.run({**SMALL,
                                       "kinds": list(SMALL["kinds"]),
                                       "namespace": "b"})
            return other

        other = asyncio.run(scenario())
        assert other.n_store_hits == 0  # namespaces partition the cache

    def test_failed_job_raises_and_counts(self):
        async def scenario():
            service = CampaignService()
            job = await service.submit(JobSpec(stages=0, kinds=("pipe",)))
            with pytest.raises(ServiceError):
                await job.wait()
            return service, job

        service, job = asyncio.run(scenario())
        assert job.status == "failed"
        assert service.stats()["jobs_failed"] == 1

    def test_queue_depth_tracks_outstanding_jobs(self):
        async def scenario():
            service = CampaignService(max_concurrent_jobs=1)
            jobs = [await service.submit(JobSpec(**SMALL))
                    for _ in range(3)]
            await asyncio.gather(*(job.wait() for job in jobs))
            return service

        service = asyncio.run(scenario())
        stats = service.stats()
        assert stats["max_queue_depth"] == 3
        assert stats["queue_depth"] == 0
        assert stats["jobs_completed"] == 3

    def test_service_job_span_is_traced(self):
        async def scenario():
            service = CampaignService()
            await service.run(JobSpec(**SMALL))
            return service

        service = asyncio.run(scenario())
        spans = [e for e in service.telemetry.events()
                 if e.get("type") == "span" and e["name"] == "service.job"]
        assert len(spans) == 1
        assert spans[0]["attrs"]["n_defects"] == 4


class TestTCPFrontEnd:
    def test_round_trip_over_real_sockets(self, tmp_path):
        async def scenario():
            service = CampaignService(store=str(tmp_path / "store"))
            server = await service.serve(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                cold = await submit_and_stream(host, port,
                                               JobSpec(**SMALL))
                warm = await submit_and_stream(host, port,
                                               JobSpec(**SMALL).to_dict())
            finally:
                server.close()
                await server.wait_closed()
            return cold, warm

        cold, warm = asyncio.run(scenario())
        assert cold[0]["event"] == "accepted"
        assert any(e["event"] == "progress" for e in cold)
        done = cold[-1]
        assert done["event"] == "done"
        assert done["n_defects"] == 4
        assert done["oracle_names"] == ["logic", "detector", "iddq"]
        assert all(set(r) == {"key", "converged", "solver", "verdicts"}
                   for r in done["records"])
        warm_done = warm[-1]
        assert warm_done["n_store_hits"] == 4
        assert {r["key"]: r["verdicts"] for r in done["records"]} == \
            {r["key"]: r["verdicts"] for r in warm_done["records"]}

    def test_ping_stats_and_bad_ops(self):
        async def scenario():
            import json

            service = CampaignService()
            server = await service.serve(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            reader, writer = await asyncio.open_connection(host, port)
            replies = []
            try:
                for request in ({"op": "ping"}, {"op": "stats"},
                                {"op": "launch-missiles"},
                                {"op": "submit",
                                 "spec": {"bogus_field": 1}}):
                    writer.write(json.dumps(request).encode() + b"\n")
                    await writer.drain()
                    replies.append(json.loads(await reader.readline()))
            finally:
                writer.close()
                server.close()
                await server.wait_closed()
            return replies

        pong, stats, unknown, bad_spec = asyncio.run(scenario())
        assert pong == {"event": "pong"}
        assert stats["event"] == "stats"
        assert "jobs_submitted" in stats
        assert unknown["event"] == "error"
        assert "unknown op" in unknown["error"]
        assert bad_spec["event"] == "error"
        assert "bogus_field" in bad_spec["error"]

    def test_load_test_harness(self, tmp_path):
        async def scenario():
            service = CampaignService(store=str(tmp_path / "store"))
            server = await service.serve(port=0)
            host, port = server.sockets[0].getsockname()[:2]
            try:
                await service.run(JobSpec(**SMALL))  # prime the store
                summary = await run_load_test(
                    host, port, [JobSpec(**SMALL) for _ in range(3)])
            finally:
                server.close()
                await server.wait_closed()
            return service, summary

        service, summary = asyncio.run(scenario())
        assert summary["clients"] == 3
        assert summary["completed"] == 3
        assert summary["failed"] == 0
        assert summary["total_store_hits"] == 3 * 4  # all cache-served
        assert len(summary["wall_s"]) == 3
        assert service.stats()["max_queue_depth"] >= 2


def test_balanced_chunk_size_oversubscribes_for_stealing():
    # Four chunks per worker by default: stragglers steal the slack.
    assert balanced_chunk_size(160, workers=4) == 10
    assert balanced_chunk_size(160, workers=4, oversubscribe=1) == 40
    # Degenerate cases stay sane.
    assert balanced_chunk_size(3, workers=8) == 1
    assert balanced_chunk_size(0, workers=4) == 1
    assert balanced_chunk_size(1, workers=1) == 1
