"""Regression tests for the stateful-simulation correctness bugs.

Each class pins one fixed bug; every test here failed against the old
behaviour:

* toggle coverage depended on whatever was simulated on the network
  before the measurement (no reset);
* sensitization evaluated gates behind flip-flops with stale or X
  state, declaring them untestable (and its verdicts changed with call
  order);
* ``add_output`` accepted duplicates, ``validate()`` missed undriven
  primary outputs, and ``converges_from_x`` disagreed with
  ``convergence_length`` on flip-flop-free networks;
* ``observability_gain`` double-bumped the ``faultsim.*`` counters by
  resolving telemetry once per internal pass.
"""

import pytest

from repro.telemetry import Telemetry
from repro.testgen import (KEEP_STATE, LogicNetwork, classify_target,
                           converges_from_x, convergence_length,
                           coverage_growth, find_toggle_pair, full_adder,
                           measure_toggle_coverage, observability_gain,
                           random_vectors, sensitization_report,
                           sequential_decider, shift_register)
from repro.testgen.sensitize import STATE_BLOCKED, STRUCTURALLY_CONSTANT


def _dirty(network, n=7, seed=3):
    """Simulate something on the network to leave stale dff state."""
    for vector in random_vectors(network.primary_inputs, n, seed=seed):
        network.step(vector)
    return network


class TestToggleCoverageReset:
    def test_measurement_is_call_order_independent(self):
        vectors = list(random_vectors(["sin"], 12, seed=1))
        fresh = measure_toggle_coverage(shift_register(3), vectors)
        dirty = measure_toggle_coverage(_dirty(shift_register(3)),
                                        vectors)
        assert dirty.coverage == fresh.coverage
        assert dirty.seen0 == fresh.seen0
        assert dirty.seen1 == fresh.seen1

    def test_growth_is_call_order_independent(self):
        network = sequential_decider()
        vectors = list(random_vectors(network.primary_inputs, 16, seed=2))
        first = coverage_growth(network, vectors)
        again = coverage_growth(network, vectors)  # same object, re-run
        assert first == again

    def test_initial_state_is_parameterized(self):
        vectors = [{"sin": False}] * 4
        all_zero = measure_toggle_coverage(shift_register(2), vectors,
                                           initial_state=False)
        all_one = measure_toggle_coverage(shift_register(2), vectors,
                                          initial_state=True)
        # From all-1, constant-0 input toggles the registers; from
        # all-0 it never does.
        assert all_one.coverage > all_zero.coverage

    def test_mapping_initial_state(self):
        vectors = [{"sin": False}] * 3
        result = measure_toggle_coverage(
            shift_register(2), vectors,
            initial_state={"F0": True, "F1": False})
        assert "q0" in result.seen0 and "q0" in result.seen1

    def test_keep_state_opts_out_of_reset(self):
        network = shift_register(2)
        network.reset(True)
        kept = measure_toggle_coverage(network, [{"sin": False}] * 3,
                                       initial_state=KEEP_STATE)
        reset = measure_toggle_coverage(shift_register(2),
                                        [{"sin": False}] * 3)
        assert kept.coverage > reset.coverage


class TestSensitizationState:
    def test_gates_behind_flip_flops_are_not_untestable(self):
        # decider: A1 = and2(s0, go) with s0 a dff output.  The old
        # code evaluated with X state and declared every such gate
        # untestable; with a concrete state they all toggle.
        network = sequential_decider()
        report = sensitization_report(network,
                                      state={"F0": True, "F1": False})
        assert not report.untestable, report.untestable
        assert {p.target for p in report.pairs} == \
            {g.output for g in network.gates.values()
             if not g.is_sequential}

    def test_verdicts_are_call_order_independent(self):
        network = sequential_decider()
        first = sensitization_report(network, state=False)
        _dirty(network)
        second = sensitization_report(network, state=False)
        assert second.untestable == first.untestable
        assert len(second.pairs) == len(first.pairs)

    def test_state_argument_is_honoured(self):
        # and2(q, b) with the dff held at 0 cannot toggle; with the
        # dff at 1 it can — and the two classifications must differ.
        net = LogicNetwork()
        net.add_input("d")
        net.add_input("b")
        net.add_gate("F", "dff", ["d"], "q")
        net.add_gate("G", "and2", ["q", "b"], "y")
        net.add_output("y")
        assert find_toggle_pair(net, "G", state=True) is not None
        assert find_toggle_pair(net, "G", state=False) is None
        assert classify_target(net, "G", state=False) == STATE_BLOCKED
        assert classify_target(net, "G", state=True) == "testable"

    def test_structurally_constant_is_distinguished(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("N", "inverter", ["a"], "ab")
        net.add_gate("G", "and2", ["a", "ab"], "y")  # constant 0
        net.add_output("y")
        assert classify_target(net, "G") == STRUCTURALLY_CONSTANT
        report = sensitization_report(net)
        assert report.untestable["G"] == STRUCTURALLY_CONSTANT

    def test_dff_target_raises(self):
        with pytest.raises(ValueError, match="sequential"):
            find_toggle_pair(shift_register(2), "F0")


class TestNetworkConsistency:
    def test_duplicate_output_rejected(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("G", "buffer", ["a"], "y")
        net.add_output("y")
        with pytest.raises(ValueError, match="duplicate primary output"):
            net.add_output("y")

    def test_undriven_primary_output_flagged(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("G", "buffer", ["a"], "y")
        net.add_output("ghost")
        assert any("ghost" in w and "undriven" in w
                   for w in net.validate())
        clean = full_adder()
        assert clean.validate() == []

    def test_converges_from_x_combinational_reports_zero_cycles(self):
        network = full_adder()
        vectors = list(random_vectors(network.primary_inputs, 4, seed=1))
        single = converges_from_x(network, vectors)
        multi = convergence_length(network, vectors)
        assert single.converged and multi.converged
        assert single.cycles == multi.cycles == 0

    def test_sequential_convergence_still_counts_cycles(self):
        network = shift_register(2)
        vectors = [{"sin": True}] * 4
        result = converges_from_x(network, vectors)
        assert result.converged and result.cycles == 2


class TestObservabilityGainTelemetry:
    def test_counters_bump_once_per_experiment(self):
        network = full_adder()
        vectors = list(random_vectors(network.primary_inputs, 8, seed=4))
        telemetry = Telemetry.capturing()
        _, all_gates = observability_gain(network, vectors,
                                          telemetry=telemetry)
        detected = telemetry.metrics.counter_value("faultsim.detected")
        undetected = telemetry.metrics.counter_value(
            "faultsim.undetected")
        total = len(network.signals()) * 2
        # One logical experiment: the counters account for the fault
        # list exactly once (the old code ran two traced simulations,
        # counting every fault twice).
        assert detected + undetected == total
        assert detected / total == pytest.approx(all_gates)

    def test_single_span_emitted(self):
        network = full_adder()
        vectors = list(random_vectors(network.primary_inputs, 4, seed=5))
        telemetry = Telemetry.capturing()
        observability_gain(network, vectors, telemetry=telemetry)
        spans = [e for e in telemetry.events()
                 if e.get("type") == "span"]
        assert [s["name"] for s in spans] == ["observability_gain"]
