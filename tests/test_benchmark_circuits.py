"""Tests for the larger benchmark networks (ALU slice, Gray counter)."""

import itertools

import pytest

from repro.testgen import (
    alu_slice,
    exhaustive_vectors,
    fault_simulate,
    gray_counter,
    measure_toggle_coverage,
    random_vectors,
    sensitization_plan,
    synthesize,
)


class TestAluSlice:
    @pytest.mark.parametrize(
        "a,b,cin,op",
        list(itertools.product([False, True], [False, True],
                               [False, True], range(4))))
    def test_truth_table(self, a, b, cin, op):
        network = alu_slice()
        vector = {"a": a, "b": b, "cin": cin,
                  "s0": bool(op & 1), "s1": bool(op >> 1)}
        values = network.evaluate(vector)
        expected = {
            0: a and b,
            1: a or b,
            2: a != b,
            3: (int(a) + int(b) + int(cin)) & 1 == 1,
        }[op]
        assert values["y"] == expected
        if op == 3:
            assert values["cout"] == (int(a) + int(b) + int(cin) >= 2)

    def test_all_gates_sensitizable(self):
        pairs, untestable = sensitization_plan(alu_slice())
        assert untestable == []
        assert len(pairs) == len(alu_slice().gates)

    def test_stuck_at_coverage_exhaustive(self):
        network = alu_slice()
        vectors = list(exhaustive_vectors(network.primary_inputs))
        result = fault_simulate(network, vectors)
        assert result.coverage == 1.0

    def test_synthesizes(self):
        design = synthesize(alu_slice())
        from repro.circuit.devices import Bjt

        n_transistors = len(design.circuit.components_of_type(Bjt))
        assert n_transistors > 50  # a real block, not a toy


class TestGrayCounter:
    def test_one_bit_changes_per_step(self):
        network = gray_counter(3)
        network.reset(False)
        previous = None
        for _ in range(16):
            values = network.step({"en": True})
            state = tuple(values[f"g{i}"] for i in range(3))
            if previous is not None:
                flips = sum(1 for x, y in zip(previous, state) if x != y)
                assert flips == 1
            previous = state

    def test_visits_all_codes(self):
        network = gray_counter(3)
        network.reset(False)
        seen = set()
        for _ in range(8):
            values = network.step({"en": True})
            seen.add(tuple(values[f"g{i}"] for i in range(3)))
        assert len(seen) == 8

    def test_enable_freezes(self):
        network = gray_counter(3)
        network.reset(False)
        network.step({"en": True})
        frozen = network.state()
        network.step({"en": False})
        assert network.state() == frozen

    def test_width_validation(self):
        with pytest.raises(ValueError):
            gray_counter(1)

    def test_toggle_coverage_random(self):
        network = gray_counter(3)
        network.reset(False)
        vectors = random_vectors(["en"], 64, seed=11)
        coverage = measure_toggle_coverage(network, vectors)
        assert coverage.coverage == 1.0
