"""End-to-end tests of logic → CML transistor-level synthesis.

These are the integration tests of the whole stack: a gate-level design
is lowered onto the CML library, driven with differential sources, solved
with the analog engine and compared against the logic simulator.
"""

import pytest

from repro.circuit import VoltageSource
from repro.cml import NOMINAL
from repro.dft import instrument_pairs
from repro.faults import Pipe, inject
from repro.sim import operating_point
from repro.testgen import full_adder, mux_select_tree, synthesize

TECH = NOMINAL


def _drive(design, vector):
    """Attach differential DC sources for one input vector (fresh copy)."""
    circuit = design.circuit.copy()
    for signal, value in vector.items():
        net_p, net_n = design.pair(signal)
        vp = TECH.vhigh if value else TECH.vlow
        vn = TECH.vlow if value else TECH.vhigh
        circuit.add(VoltageSource(f"V_{signal}", net_p, "0", vp))
        circuit.add(VoltageSource(f"V_{signal}b", net_n, "0", vn))
    return circuit


def _logic_value(op, pair):
    return op.voltage(pair[0]) > op.voltage(pair[1])


class TestSynthesis:
    def test_full_adder_structure(self):
        design = synthesize(full_adder(), TECH)
        assert set(design.instances) == {"X1", "X2", "A1", "A2", "O1"}
        # Shared level shifters: b, cin and cx are second-level inputs.
        shifter_names = [c.name for c in design.circuit
                         if c.name.startswith("LS_")]
        assert len(shifter_names) == 3 * 2 * 2  # 3 signals x 2 rails x 2 parts

    def test_transistor_names_accessor(self):
        design = synthesize(full_adder(), TECH)
        names = design.transistor_names("X1")
        assert all(name.startswith("X1.") for name in names)
        assert len(names) == 7  # xor2: 4 top + 2 select + tail

    @pytest.mark.parametrize("vector", [
        {"a": False, "b": False, "cin": False},
        {"a": True, "b": False, "cin": False},
        {"a": True, "b": True, "cin": False},
        {"a": True, "b": True, "cin": True},
        {"a": False, "b": True, "cin": True},
    ])
    def test_full_adder_analog_matches_logic(self, vector):
        network = full_adder()
        design = synthesize(network, TECH)
        circuit = _drive(design, vector)
        op = operating_point(circuit)
        expected = network.evaluate(vector)
        for signal in ("sum", "cout", "axb", "ab", "cx"):
            measured = _logic_value(op, design.pair(signal))
            assert measured == expected[signal], f"{signal} under {vector}"

    def test_mux_tree_analog_matches_logic(self):
        network = mux_select_tree()
        design = synthesize(network, TECH)
        vector = {"d0": False, "d1": True, "d2": False, "d3": True,
                  "s0": True, "s1": False}
        op = operating_point(_drive(design, vector))
        expected = network.evaluate(vector)
        assert _logic_value(op, design.pair("out")) == expected["out"]

    def test_gate_output_pairs_for_detectors(self):
        design = synthesize(full_adder(), TECH)
        pairs = design.gate_output_pairs()
        assert len(pairs) == 5
        assert ("sum", "sum_b") in pairs


class TestInstrumentedLogic:
    """The full paper flow on a real logic block: synthesize, insert
    detectors, inject a pipe into one gate, check the flag."""

    @pytest.fixture(scope="class")
    def monitored_design(self):
        network = full_adder()
        design = synthesize(network, TECH)
        monitors = instrument_pairs(design.circuit,
                                    design.gate_output_pairs(), TECH)
        return design, monitors

    def _solve(self, design, vector, defect=None):
        circuit = _drive(design, vector)
        if defect is not None:
            circuit = inject(circuit, defect)
        return operating_point(circuit)

    def test_fault_free_flag_passes(self, monitored_design):
        design, monitors = monitored_design
        vector = {"a": True, "b": False, "cin": True}
        op = self._solve(design, vector)
        flag, flagb = monitors.flag_nets()[0]
        assert op.voltage(flag) > op.voltage(flagb)

    def test_pipe_in_xor_gate_flags_when_asserted(self, monitored_design):
        design, monitors = monitored_design
        # Pipe on the current source of X2 (the sum XOR).
        defect = Pipe("X2.Q3", 4e3)
        vector = {"a": True, "b": False, "cin": True}
        op = self._solve(design, vector, defect)
        flag, flagb = monitors.flag_nets()[0]
        assert op.voltage(flag) < op.voltage(flagb)

    def test_logic_still_correct_with_pipe(self, monitored_design):
        """The pipe is a parametric fault: logic values stay correct, so
        only the detector sees it — the paper's motivating scenario."""
        design, _ = monitored_design
        network = full_adder()
        vector = {"a": True, "b": True, "cin": False}
        op = self._solve(design, vector, Pipe("X2.Q3", 4e3))
        expected = network.evaluate(vector)
        for signal in ("sum", "cout"):
            assert _logic_value(op, design.pair(signal)) == expected[signal]
