"""Unit tests for the waveform measurement toolkit."""

import numpy as np
import pytest

from repro.sim.waveform import (
    Waveform,
    delay_between,
    differential_crossings,
    hysteresis_thresholds,
)


def square_wave(period=1.0, cycles=4, low=0.0, high=1.0, samples_per=100):
    t = np.linspace(0, cycles * period, cycles * samples_per,
                    endpoint=False)
    v = np.where((t % period) < period / 2, low, high)
    return Waveform(t, v, name="sq")


def ramp(t0=0.0, t1=1.0, v0=0.0, v1=1.0, n=101):
    t = np.linspace(t0, t1, n)
    return Waveform(t, v0 + (v1 - v0) * (t - t0) / (t1 - t0))


class TestBasics:
    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Waveform([0, 1], [0, 1, 2])
        with pytest.raises(ValueError):
            Waveform([0], [0])

    def test_value_at_interpolates(self):
        wave = ramp()
        assert wave.value_at(0.25) == pytest.approx(0.25)

    def test_value_at_clamps(self):
        wave = ramp()
        assert wave.value_at(-5.0) == 0.0
        assert wave.value_at(5.0) == 1.0

    def test_window_bounds(self):
        wave = ramp()
        sub = wave.window(0.2, 0.8)
        assert sub.t_start == pytest.approx(0.2)
        assert sub.t_stop == pytest.approx(0.8)
        assert sub.value_at(0.5) == pytest.approx(0.5)

    def test_window_invalid(self):
        with pytest.raises(ValueError):
            ramp().window(0.8, 0.2)

    def test_arithmetic(self):
        a = ramp()
        b = ramp(v0=1.0, v1=2.0)
        assert np.allclose((b - a).values, 1.0)
        assert np.allclose((a + 1.0).values, a.values + 1.0)
        assert np.allclose((-a).values, -a.values)
        assert np.allclose((a * 2).values, 2 * a.values)

    def test_arithmetic_time_base_mismatch(self):
        a = ramp(n=101)
        b = ramp(n=51)
        with pytest.raises(ValueError, match="time base"):
            a - b


class TestCrossings:
    def test_rising_crossing_time(self):
        wave = ramp()
        crossings = wave.crossings(0.5, "rise")
        assert len(crossings) == 1
        assert crossings[0] == pytest.approx(0.5)

    def test_direction_filtering(self):
        # 1.25 cycles of a sine starting at 0: one falling crossing at
        # t=0.5 and one rising at t=1.0 (the t=0 start is not a crossing).
        t = np.linspace(0, 1.25, 251)
        wave = Waveform(t, np.sin(2 * np.pi * t))
        assert wave.crossings(0.0, "rise") == pytest.approx([1.0], abs=1e-3)
        assert wave.crossings(0.0, "fall") == pytest.approx([0.5], abs=1e-3)
        assert len(wave.crossings(0.0, "both")) == 2

    def test_after_filter(self):
        wave = square_wave()
        all_rises = wave.crossings(0.5, "rise")
        later = wave.crossings(0.5, "rise", after=all_rises[0])
        assert later == all_rises[1:]

    def test_no_crossing_returns_empty(self):
        assert ramp().crossings(2.0) == []
        assert ramp().first_crossing(2.0) is None

    def test_sample_exactly_on_level(self):
        wave = Waveform([0, 1, 2], [0.0, 0.5, 1.0])
        crossings = wave.crossings(0.5, "rise")
        assert crossings == [1.0]

    def test_bad_direction(self):
        with pytest.raises(ValueError):
            ramp().crossings(0.5, "sideways")


class TestLevels:
    def test_square_levels(self):
        wave = square_wave(low=0.1, high=0.9)
        vlow, vhigh = wave.levels()
        assert vlow == pytest.approx(0.1)
        assert vhigh == pytest.approx(0.9)

    def test_constant_levels(self):
        wave = Waveform([0, 1, 2], [0.7, 0.7, 0.7])
        assert wave.levels() == (0.7, 0.7)
        assert wave.swing() == 0.0

    def test_levels_robust_to_spikes(self):
        wave = square_wave(low=0.0, high=1.0)
        values = wave.values.copy()
        values[10] = 5.0  # one glitch sample
        spiky = Waveform(wave.times, values)
        vlow, vhigh = spiky.levels()
        assert vhigh == pytest.approx(1.0, abs=0.01)

    def test_extreme_swing(self):
        wave = square_wave(low=-1.0, high=2.0)
        assert wave.extreme_swing() == pytest.approx(3.0)


class TestStability:
    def make_decay(self, drop=1.0, tau=0.1, ripple=0.0, t_stop=1.0):
        t = np.linspace(0, t_stop, 500)
        v = 3.3 - drop * (1 - np.exp(-t / tau))
        if ripple:
            v += ripple * np.sin(2 * np.pi * 40 * t)
        return Waveform(t, v)

    def test_exponential_decay_tstab(self):
        wave = self.make_decay()
        t_stab = wave.time_to_stability(margin=0.1)
        # 90 % of the way down an exponential: t = tau * ln(10) ~ 0.23.
        assert t_stab == pytest.approx(0.23, abs=0.03)

    def test_no_drop_returns_none(self):
        wave = Waveform([0, 1, 2], [3.3, 3.3, 3.3])
        assert wave.time_to_stability() is None

    def test_small_drop_below_min_drop(self):
        wave = self.make_decay(drop=0.01)
        assert wave.time_to_stability(min_drop=0.05) is None

    def test_still_decaying_returns_none(self):
        # tau >> window: essentially a linear decay whose minimum band is
        # only touched at the very end of the record.
        wave = self.make_decay(drop=1.0, tau=10.0)
        assert wave.time_to_stability(min_drop=0.01) is None

    def test_stable_maximum_is_ripple_top(self):
        wave = self.make_decay(drop=1.0, tau=0.05, ripple=0.05)
        v_max = wave.stable_maximum(margin=0.2)
        assert v_max is not None
        assert 2.3 < v_max < 2.5  # bottom level 2.3 + ripple

    def test_ripple_measures_tail(self):
        wave = self.make_decay(drop=1.0, tau=0.01, ripple=0.02)
        assert wave.ripple() == pytest.approx(0.04, abs=0.01)


class TestHelpers:
    def test_differential_crossings(self):
        t = np.linspace(0, 1.25, 500)
        p = Waveform(t, np.sin(2 * np.pi * t))
        n = Waveform(t, -np.sin(2 * np.pi * t))
        # p - n = 2 sin: one falling zero at 0.5, one rising at 1.0.
        assert differential_crossings(p, n, "rise") == pytest.approx(
            [1.0], abs=1e-3)
        assert differential_crossings(p, n, "fall") == pytest.approx(
            [0.5], abs=1e-3)

    def test_delay_between_pairs_edges(self):
        reference = [1.0, 2.0, 3.0]
        measured = [1.1, 2.15, 3.05]
        delays = delay_between(reference, measured)
        assert delays == pytest.approx([0.1, 0.15, 0.05])

    def test_delay_between_skips_unmatched(self):
        assert delay_between([2.0], [1.0, 2.5]) == pytest.approx([0.5])

    def test_hysteresis_thresholds(self):
        t = np.linspace(0, 2, 801)
        drive = Waveform(t, np.where(t < 1, 1 - t, t - 1))  # down then up
        # Output switches low when drive < 0.3, back high when drive > 0.6.
        state, out = 1.0, []
        for v in drive.values:
            if state > 0.5 and v < 0.3:
                state = 0.0
            elif state < 0.5 and v > 0.6:
                state = 1.0
            out.append(state)
        response = Waveform(t, out)
        fall_at, rise_at = hysteresis_thresholds(drive, response, 0.5)
        assert fall_at == pytest.approx(0.3, abs=0.01)
        assert rise_at == pytest.approx(0.6, abs=0.01)
