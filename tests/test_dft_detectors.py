"""Tests of detector variants 1 and 2 (sections 6.1-6.2)."""

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import DetectorConfig, attach_variant1, attach_variant2, ensure_vtest
from repro.dft import test_mode_entry as enter_test_mode  # avoid pytest collection
from repro.faults import Pipe, inject
from repro.sim import run_cycles

TECH = NOMINAL
FAST_CONFIG = DetectorConfig(load_cap=1e-12)


def _variant1_response(pipe_resistance, cycles=30, config=FAST_CONFIG,
                       frequency=100e6):
    chain = buffer_chain(TECH, frequency=frequency)
    detector = attach_variant1(chain.circuit, "op", "opb", tech=TECH,
                               config=config)
    circuit = chain.circuit
    if pipe_resistance is not None:
        circuit = inject(circuit, Pipe("DUT.Q3", pipe_resistance))
    result = run_cycles(circuit, frequency, cycles=cycles,
                        points_per_cycle=150)
    return result.wave(detector.vout)


def _variant2_response(pipe_resistance, cycles=30, config=FAST_CONFIG,
                       frequency=100e6, dual_emitter=False):
    chain = buffer_chain(TECH, frequency=frequency)
    ensure_vtest(chain.circuit, TECH, enter_test_mode(TECH))
    detector = attach_variant2(chain.circuit, "op", "opb", tech=TECH,
                               config=config, dual_emitter=dual_emitter)
    circuit = chain.circuit
    if pipe_resistance is not None:
        circuit = inject(circuit, Pipe("DUT.Q3", pipe_resistance))
    # Start with vout precharged to its quiescent level: the DC solution
    # pre-empts the detection the experiment is supposed to time.
    result = run_cycles(circuit, frequency, cycles=cycles,
                        points_per_cycle=150,
                        cap_overrides={f"{detector.name}.C7": 0.0})
    return result.wave(detector.vout)


class TestVariant1:
    """Single-sided excessive-swing detector (Fig. 6)."""

    def test_fault_free_stays_high(self):
        wave = _variant1_response(None, cycles=20)
        assert wave.minimum() > TECH.vgnd - 0.2

    def test_one_kohm_pipe_detected_fast(self):
        wave = _variant1_response(1e3, cycles=20)
        assert wave.minimum() < TECH.vgnd - 0.6
        t_stab = wave.time_to_stability()
        assert t_stab is not None and t_stab < 50e-9

    def test_three_kohm_pipe_detected(self):
        """3 kΩ pipe ~ 0.64 V amplitude: above the variant-1 threshold."""
        wave = _variant1_response(3e3, cycles=30)
        assert wave.minimum() < TECH.vgnd - 0.35

    def test_five_kohm_pipe_escapes(self):
        """5 kΩ pipe ~ 0.48 V amplitude: below the variant-1 threshold —
        the gap variant 2 exists to close (paper: threshold 0.57 V)."""
        wave = _variant1_response(5e3, cycles=30)
        assert wave.minimum() > TECH.vgnd - 0.35

    def test_detection_monotone_in_pipe_severity(self):
        minima = [_variant1_response(r, cycles=20).minimum()
                  for r in (1e3, 2e3, 4e3)]
        assert minima[0] < minima[1] < minima[2]

    def test_resistor_load_variant_works(self):
        config = DetectorConfig(load="resistor", load_resistance=160e3,
                                load_cap=1e-12)
        wave = _variant1_response(1e3, cycles=20, config=config)
        assert wave.minimum() < TECH.vgnd - 0.5

    def test_bad_load_style_rejected(self):
        chain = buffer_chain(TECH)
        with pytest.raises(ValueError, match="load style"):
            attach_variant1(chain.circuit, "op", "opb", tech=TECH,
                            config=DetectorConfig(load="inductor"))

    def test_elements_named_after_paper(self):
        chain = buffer_chain(TECH)
        detector = attach_variant1(chain.circuit, "op", "opb", tech=TECH)
        assert "DET.Q4" in chain.circuit
        assert "DET.Q5" in chain.circuit
        assert "DET.C7" in chain.circuit
        assert detector.variant == 1

    def test_larger_load_cap_slows_detection(self):
        small = _variant1_response(
            1e3, cycles=25, config=DetectorConfig(load_cap=0.5e-12))
        large = _variant1_response(
            1e3, cycles=25, config=DetectorConfig(load_cap=5e-12))
        t_small = small.time_to_stability()
        t_large = large.time_to_stability()
        assert t_small is not None
        # The larger capacitor either hasn't stabilised or took longer.
        assert t_large is None or t_large > t_small


class TestVariant2:
    """Double-sided detector with controlled bias (Fig. 9)."""

    def test_fault_free_stays_high(self):
        wave = _variant2_response(None, cycles=20)
        assert wave.minimum() > TECH.vgnd - 0.1

    def test_detects_below_variant1_threshold(self):
        """5 kΩ (and even 7 kΩ) pipes are detected in test mode."""
        for pipe in (5e3, 7e3):
            wave = _variant2_response(pipe, cycles=20)
            assert wave.minimum() < TECH.vgnd - 0.3, f"pipe {pipe} escaped"

    def test_faster_than_variant1(self):
        """Paper: variant-2 responds much faster.  Compare the time to
        cross a fixed detection level below the quiescent vout."""
        level = TECH.vgnd - 0.25
        v1 = _variant1_response(3e3, cycles=30)
        v2 = _variant2_response(3e3, cycles=30)
        t1 = v1.first_crossing(level, "fall") or float("inf")
        t2 = v2.first_crossing(level, "fall")
        assert t2 is not None
        assert t2 < t1

    def test_normal_mode_non_intrusive(self):
        """In normal mode (vtest = vgnd) the detector must not disturb the
        monitored gate: its output levels and swing match the bare chain.
        (This is the paper's 'non-intrusive built-in detectors' claim.)"""
        from repro.circuit import Dc

        bare = buffer_chain(TECH, frequency=100e6)
        result_bare = run_cycles(bare.circuit, 100e6, cycles=10,
                                 points_per_cycle=150)
        monitored = buffer_chain(TECH, frequency=100e6)
        ensure_vtest(monitored.circuit, TECH, Dc(TECH.vgnd))
        attach_variant2(monitored.circuit, "op", "opb", tech=TECH,
                        config=FAST_CONFIG)
        result_mon = run_cycles(monitored.circuit, 100e6, cycles=10,
                                points_per_cycle=150)

        window = (5e-9, 20e-9)
        for net in ("op", "opb", "op4"):
            bare_levels = result_bare.wave(net).window(*window).levels()
            mon_levels = result_mon.wave(net).window(*window).levels()
            assert mon_levels[0] == pytest.approx(bare_levels[0], abs=0.01)
            assert mon_levels[1] == pytest.approx(bare_levels[1], abs=0.01)

    def test_dual_emitter_equivalent(self):
        """Fig. 15: one dual-emitter device behaves like the Q4/Q5 pair."""
        pair = _variant2_response(4e3, cycles=15)
        dual = _variant2_response(4e3, cycles=15, dual_emitter=True)
        assert dual.minimum() == pytest.approx(pair.minimum(), abs=0.05)
        assert dual.values[-1] == pytest.approx(pair.values[-1], abs=0.05)

    def test_dual_emitter_element_count(self):
        chain = buffer_chain(TECH)
        ensure_vtest(chain.circuit, TECH)
        detector = attach_variant2(chain.circuit, "op", "opb", tech=TECH,
                                   dual_emitter=True)
        transistor_elements = [e for e in detector.elements
                               if ".Q45" in e]
        assert len(transistor_elements) == 1

    def test_elements_named_after_paper(self):
        chain = buffer_chain(TECH)
        ensure_vtest(chain.circuit, TECH)
        attach_variant2(chain.circuit, "op", "opb", tech=TECH)
        assert "DET.Q4" in chain.circuit
        assert "DET.Q5" in chain.circuit
        assert "DET.Q6" in chain.circuit  # load diode per Fig. 9


class TestTestModeEntry:
    def test_waveform_levels(self):
        wave = enter_test_mode(TECH, t_on=2e-9, ramp=1e-9)
        assert wave.value(0.0) == TECH.vgnd
        assert wave.value(1.9e-9) == TECH.vgnd
        assert wave.value(3.1e-9) == TECH.vtest

    def test_ensure_vtest_idempotent(self):
        chain = buffer_chain(TECH)
        ensure_vtest(chain.circuit, TECH)
        ensure_vtest(chain.circuit, TECH)
        assert "VTEST" in chain.circuit
