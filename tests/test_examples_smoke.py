"""Every example script must import and run end-to-end in fast mode.

Examples are documentation that executes; this keeps them from rotting
as the library evolves.  ``REPRO_EXAMPLE_FAST=1`` switches the heavy
scripts onto reduced grids, and each example runs from a temporary
working directory so dropped artifacts (checkpoints, result dirs)
never touch the repo.
"""

import importlib
import os
import sys

import pytest

EXAMPLES_DIR = os.path.abspath(
    os.path.join(os.path.dirname(__file__), os.pardir, "examples"))

#: module name -> argv for main() (None = zero-argument main()).
EXAMPLES = {
    "quickstart": None,
    "fault_campaign": None,
    "dft_insertion_flow": None,
    "fault_diagnosis": None,
    "healing_study": None,
    "detector_design_space": None,
    "sequential_bist": None,
    "service_smoke": None,
    "defect_families_study": None,
    "paper_scale_reproduction": (["--quick", "--only", "fig2"],),
}


def test_every_example_is_listed():
    scripts = {name[:-3] for name in os.listdir(EXAMPLES_DIR)
               if name.endswith(".py")}
    assert scripts == set(EXAMPLES), \
        "new example scripts must be added to the smoke test"


@pytest.mark.parametrize("name", sorted(EXAMPLES))
def test_example_runs_in_fast_mode(name, tmp_path, monkeypatch, capsys):
    monkeypatch.setenv("REPRO_EXAMPLE_FAST", "1")
    monkeypatch.chdir(tmp_path)
    monkeypatch.syspath_prepend(EXAMPLES_DIR)
    # A fresh import per test: examples read the environment at run
    # time, but stale module state from a previous parametrization (or
    # an aborted run) must not leak in.
    sys.modules.pop(name, None)
    module = importlib.import_module(name)
    try:
        arguments = EXAMPLES[name] or ()
        module.main(*arguments)
    finally:
        sys.modules.pop(name, None)
    out = capsys.readouterr().out
    assert out.strip(), f"{name} printed nothing"
