"""Tests for technology characterization and delay calibration."""

import pytest

from repro.cml import (
    CmlTechnology,
    NOMINAL,
    calibrate_delay,
    characterize,
    measure_stage_delay,
)


class TestCharacterize:
    @pytest.fixture(scope="class")
    def figures(self):
        return characterize(NOMINAL)

    def test_swing_matches_design(self, figures):
        assert figures["swing"] == pytest.approx(NOMINAL.swing, rel=0.05)

    def test_vbe_matches_anchor(self, figures):
        assert figures["vbe"] == pytest.approx(NOMINAL.vbe_on, abs=0.005)

    def test_tail_current(self, figures):
        assert figures["itail"] == pytest.approx(NOMINAL.itail, rel=0.02)

    def test_stage_delay_near_paper(self, figures):
        assert 35e-12 < figures["stage_delay"] < 65e-12

    def test_power_per_gate(self, figures):
        # 0.5 mA from 3.3 V ~ 1.65 mW per gate.
        assert figures["gate_power"] == pytest.approx(1.65e-3, rel=0.05)

    def test_max_toggle_frequency_consistent(self, figures):
        assert figures["max_toggle_frequency"] == pytest.approx(
            1.0 / (4 * figures["stage_delay"]))


class TestCalibrateDelay:
    def test_hits_slower_target(self):
        result = calibrate_delay(70e-12, NOMINAL, tolerance=0.05)
        assert result.achieved_delay == pytest.approx(70e-12, rel=0.05)
        assert result.tech.c_wire > NOMINAL.c_wire

    def test_hits_faster_target(self):
        result = calibrate_delay(38e-12, NOMINAL, tolerance=0.05)
        assert result.achieved_delay == pytest.approx(38e-12, rel=0.05)
        assert result.tech.c_wire < NOMINAL.c_wire

    def test_already_calibrated_short_circuit(self):
        nominal_delay = measure_stage_delay(NOMINAL)
        result = calibrate_delay(nominal_delay, NOMINAL, tolerance=0.05)
        assert result.iterations == 1

    def test_invalid_target(self):
        with pytest.raises(ValueError):
            calibrate_delay(-1e-12)

    def test_delay_monotone_in_c_wire(self):
        slow = measure_stage_delay(CmlTechnology(c_wire=120e-15),
                                   n_stages=4)
        fast = measure_stage_delay(CmlTechnology(c_wire=20e-15),
                                   n_stages=4)
        assert slow > fast
