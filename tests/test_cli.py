"""Tests for the ``python -m repro`` command-line interface."""


from repro.__main__ import EXPERIMENTS, main


class TestList:
    def test_list_exits_zero(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig4", "table1", "fig14", "variation"):
            assert name in out

    def test_registry_covers_every_paper_artefact(self):
        required = {"fig2", "fig4", "table1", "table2", "fig5", "fig7",
                    "fig8", "fig10", "fig12", "fig14", "area", "toggle"}
        assert required <= set(EXPERIMENTS)


class TestRun:
    def test_run_single_experiment(self, capsys):
        assert main(["run", "area"]) == 0
        out = capsys.readouterr().out
        assert "area overhead" in out
        assert "[area:" in out

    def test_run_fast_analog_experiment(self, capsys):
        assert main(["run", "fig12"]) == 0
        assert "hysteresis" in capsys.readouterr().out

    def test_unknown_experiment_fails(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_mixed_unknown_rejected_before_running(self, capsys):
        assert main(["run", "area", "bogus"]) == 2


class TestExportSpice:
    def test_export_fault_free(self, tmp_path, capsys):
        path = tmp_path / "chain.cir"
        assert main(["export-spice", str(path), "--stages", "3"]) == 0
        deck = path.read_text()
        assert deck.startswith("* instrumented 3-stage CML chain")
        assert "FAULT" not in deck

    def test_export_with_pipe(self, tmp_path):
        path = tmp_path / "faulty.cir"
        assert main(["export-spice", str(path), "--stages", "8",
                     "--pipe", "4e3"]) == 0
        assert "R_FAULT_PIPE_DUT_Q3" in path.read_text()
