"""Integration tests: telemetry threaded through the simulation stack.

Covers the acceptance criteria of the observability layer: a traced
campaign's JSONL reconstructs the full ``campaign → defect → analysis →
newton_solve`` hierarchy, serial and parallel campaigns report identical
aggregates and metrics, the progress callback fires on both paths, and
the satellite entry points (transient, DFT insertion, logic fault
simulation) each produce their spans.
"""

from dataclasses import replace

import pytest

from repro.circuit import Capacitor, Circuit, Pulse, Resistor, VoltageSource
from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.dft.insertion import instrument_chain
from repro.faults import (
    FlagOracle,
    IddqOracle,
    LogicOracle,
    enumerate_defects,
    run_campaign,
)
from repro.sim import SimOptions, transient
from repro.sim.options import DEFAULT_OPTIONS
from repro.telemetry import RunReport, Telemetry, read_jsonl
from repro.testgen import exhaustive_vectors, fault_simulate, full_adder


@pytest.fixture(scope="module")
def campaign_setup():
    chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(chain.circuit, kinds=("pipe",),
                                     pipe_resistances=(4e3,)))[:6]
    return chain, oracles, defects


def _traced_campaign(campaign_setup, **kwargs):
    chain, oracles, defects = campaign_setup
    tel = Telemetry.capturing()
    options = replace(DEFAULT_OPTIONS, telemetry=tel)
    result = run_campaign(chain.circuit, defects, oracles, options=options,
                          **kwargs)
    return result, tel


def _assert_full_hierarchy(report, n_defects):
    campaigns = report.named("campaign")
    assert len(campaigns) == 1
    campaign = campaigns[0]
    defect_spans = report.named("defect")
    assert len(defect_spans) == n_defects
    assert all(d["parent_id"] == campaign["span_id"] for d in defect_spans)
    for defect_span in defect_spans:
        analyses = report.children_of(defect_span)
        assert analyses, "defect span has no analysis child"
        assert all(a["name"] == "analysis" for a in analyses)
        solves = report.children_of(analyses[0])
        assert solves, "analysis span has no newton_solve child"
        assert all(s["name"] == "newton_solve" for s in solves)
    # The fault-free reference analysis nests under the campaign too.
    reference = [a for a in report.named("analysis")
                 if a["parent_id"] == campaign["span_id"]]
    assert reference


class TestCampaignTracing:
    def test_serial_trace_hierarchy(self, campaign_setup):
        result, tel = _traced_campaign(campaign_setup)
        report = RunReport.from_telemetry(tel)
        _assert_full_hierarchy(report, len(result.records))

    def test_parallel_trace_hierarchy_after_merge(self, campaign_setup):
        result, tel = _traced_campaign(campaign_setup, parallel=True,
                                       workers=2, chunk_size=2)
        report = RunReport.from_telemetry(tel)
        _assert_full_hierarchy(report, len(result.records))

    def test_repro_trace_env_writes_reconstructible_jsonl(
            self, campaign_setup, tmp_path, monkeypatch):
        chain, oracles, defects = campaign_setup
        path = tmp_path / "campaign.jsonl"
        monkeypatch.setenv("REPRO_TRACE", str(path))
        result = run_campaign(chain.circuit, defects, oracles,
                              parallel=True, workers=2)
        events = read_jsonl(str(path))
        assert events[0] == {"type": "meta", "schema": 1,
                             "pid": events[0]["pid"]}
        report = RunReport.from_events(events)
        _assert_full_hierarchy(report, len(result.records))
        assert report.metrics.counter_value("campaign.defects") == \
            len(result.records)

    def test_campaign_span_attrs(self, campaign_setup):
        result, tel = _traced_campaign(campaign_setup)
        report = RunReport.from_telemetry(tel)
        attrs = report.named("campaign")[0]["attrs"]
        assert attrs["n_defects"] == len(result.records)
        assert attrs["oracles"] == ["logic", "detector", "iddq"]
        assert attrs["n_converged"] == sum(
            1 for r in result.records if r.converged)
        assert attrs["solver_counts"] == result.solver_counts()
        assert attrs["newton_iterations"] == \
            result.aggregate_stats().iterations
        assert set(attrs["mna_cache_delta"]) == {
            "structure_hits", "structure_misses", "compiled_builds"}

    def test_report_names_slowest_defect_and_iterations(self,
                                                        campaign_setup):
        result, tel = _traced_campaign(campaign_setup)
        report = RunReport.from_telemetry(tel)
        slowest = report.slowest_defect_name()
        assert slowest in {r.defect.describe() for r in result.records}
        # The registry total also counts the fault-free reference solve,
        # which the per-record aggregate does not.
        campaign = report.named("campaign")[0]
        reference = [a for a in report.named("analysis")
                     if a["parent_id"] == campaign["span_id"]]
        total = (result.aggregate_stats().iterations
                 + sum(a["attrs"]["iterations"] for a in reference))
        assert report.total_newton_iterations() == total
        rendered = report.render()
        assert slowest in rendered
        assert f"total newton iterations: {total}" in rendered


class TestSerialParallelEquality:
    @pytest.mark.parametrize("delta", [False, True])
    def test_aggregates_and_metrics_match(self, campaign_setup, delta):
        serial, tel_s = _traced_campaign(campaign_setup, delta=delta)
        parallel, tel_p = _traced_campaign(campaign_setup, delta=delta,
                                           parallel=True, workers=2,
                                           chunk_size=2)
        assert serial.aggregate_stats() == parallel.aggregate_stats()
        for a, b in zip(serial.records, parallel.records):
            assert a.verdicts == b.verdicts
            assert a.solver == b.solver
            assert a.newton_iterations == b.newton_iterations
        assert tel_s.metrics.snapshot() == tel_p.metrics.snapshot()

    def test_aggregates_match_untraced(self, campaign_setup):
        chain, oracles, defects = campaign_setup
        serial = run_campaign(chain.circuit, defects, oracles)
        parallel = run_campaign(chain.circuit, defects, oracles,
                                parallel=True, workers=2, chunk_size=2)
        assert serial.aggregate_stats() == parallel.aggregate_stats()

    def test_aggregate_stats_reports_like_newtonstats(self, campaign_setup):
        from repro.sim.report import solver_stats_report

        result, _ = _traced_campaign(campaign_setup)
        line = solver_stats_report(result.aggregate_stats())
        assert line.startswith("strategy=campaign ")
        assert f"iterations={result.aggregate_stats().iterations}" in line


class TestProgressCallback:
    def test_serial_progress(self, campaign_setup):
        chain, oracles, defects = campaign_setup
        calls = []
        run_campaign(chain.circuit, defects, oracles,
                     progress=lambda d, t, e: calls.append((d, t, e)))
        assert [c[0] for c in calls] == list(range(1, len(defects) + 1))
        assert all(t == len(defects) for _, t, _ in calls)
        assert all(e >= 0 for _, _, e in calls)

    def test_parallel_progress_reaches_total(self, campaign_setup):
        chain, oracles, defects = campaign_setup
        calls = []
        run_campaign(chain.circuit, defects, oracles, parallel=True,
                     workers=2, chunk_size=2,
                     progress=lambda d, t, e: calls.append((d, t, e)))
        assert calls, "progress never fired on the parallel path"
        done_counts = [d for d, _, _ in calls]
        assert done_counts == sorted(done_counts)
        assert done_counts[-1] == len(defects)


def _rc_circuit():
    circuit = Circuit("rc")
    circuit.add(VoltageSource("V1", "in", "0",
                              Pulse(0.0, 1.0, delay=0.0, rise=1e-12,
                                    fall=1e-12, width=1.0, period=0.0)))
    circuit.add(Resistor("R1", "in", "out", 1000.0))
    circuit.add(Capacitor("C1", "out", "0", 1e-9))
    return circuit


class TestOtherEntryPoints:
    def test_transient_analysis_span(self):
        tel = Telemetry.capturing()
        options = SimOptions(telemetry=tel)
        result = transient(_rc_circuit(), t_stop=1e-7, dt=1e-9,
                           options=options)
        spans = [e for e in tel.events() if e.get("type") == "span"]
        analysis = [s for s in spans if s["name"] == "analysis"
                    and s["attrs"].get("kind") == "transient"]
        assert len(analysis) == 1
        attrs = analysis[0]["attrs"]
        assert attrs["timepoints"] == len(result.times)
        assert attrs["rejected_steps"] == result.stats.n_rejected_steps
        # The initial operating point traces as a nested DC analysis.
        dc = [s for s in spans if s["attrs"].get("kind") == "dc"]
        assert dc and dc[0]["parent_id"] == analysis[0]["span_id"]

    def test_adaptive_transient_rejection_histogram(self):
        tel = Telemetry.capturing()
        options = SimOptions(telemetry=tel, adaptive_step=True)
        result = transient(_rc_circuit(), t_stop=2e-6, dt=1e-9,
                           options=options)
        histo = tel.metrics.histogram("transient.rejected_dt")
        assert histo.count == result.stats.n_rejected_steps

    def test_dft_insertion_span(self):
        tel = Telemetry.capturing()
        chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
        design = instrument_chain(chain, telemetry=tel)
        spans = [e for e in tel.events()
                 if e.get("name") == "dft_insertion"]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["n_pairs"] == len(chain.output_nets)
        assert attrs["n_monitors"] == len(design.monitors)
        assert attrs["n_monitored_gates"] == design.n_monitored_gates

    def test_logic_fault_sim_span_and_counters(self):
        tel = Telemetry.capturing()
        network = full_adder()
        vectors = list(exhaustive_vectors(network.primary_inputs))
        result = fault_simulate(network, vectors, telemetry=tel)
        spans = [e for e in tel.events()
                 if e.get("name") == "logic_fault_sim"]
        assert len(spans) == 1
        attrs = spans[0]["attrs"]
        assert attrs["detected"] == len(result.detected)
        assert attrs["coverage"] == result.coverage
        counters = tel.metrics.snapshot()["counters"]
        assert counters.get("faultsim.detected", 0) == len(result.detected)
