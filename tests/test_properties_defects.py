"""Property-based tests (hypothesis) for the defect model layer.

Two invariant groups the verification corpus and campaign engines lean
on:

* serialization — ``defect_from_dict(defect_to_dict(d)) == d`` for
  every concrete defect class, including through an actual JSON text
  round-trip (the corpus stores scenarios as JSON, so float fidelity
  through ``json.dumps``/``loads`` is part of the contract);
* catalog enumeration — on any synthesized circuit (with or without
  low-swing links) ``enumerate_defects`` is deterministic, every
  yielded site names real components/nets of that circuit, and every
  defect applies cleanly to a copy.
"""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit import Bjt, MultiEmitterBjt, Resistor
from repro.cml import NOMINAL, buffer_chain
from repro.cml.interconnect import attach_low_swing_link
from repro.faults import (
    DEFECT_CLASSES,
    Bridge,
    OxideBreakdown,
    Pipe,
    ResistorOpen,
    ResistorShort,
    TerminalOpen,
    TerminalShort,
    WireLeak,
    defect_from_dict,
    defect_to_dict,
    enumerate_defects,
)
from repro.testgen import random_network, synthesize

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])

names = st.text(
    alphabet="ABCXYZ0123456789._", min_size=1, max_size=12)
resistances = st.floats(min_value=1e-3, max_value=1e12,
                        allow_nan=False, allow_infinity=False)
capacitances = st.floats(min_value=1e-18, max_value=1e-9,
                         allow_nan=False, allow_infinity=False)
terminals = st.sampled_from(["b", "c", "e"])


@st.composite
def defects(draw):
    cls = draw(st.sampled_from(DEFECT_CLASSES))
    if cls is Pipe:
        return Pipe(draw(names), draw(resistances))
    if cls is TerminalShort:
        return TerminalShort(draw(names), draw(terminals),
                             draw(terminals), draw(resistances))
    if cls is Bridge:
        return Bridge(draw(names), draw(names), draw(resistances))
    if cls is TerminalOpen:
        return TerminalOpen(draw(names), draw(terminals),
                            draw(resistances), draw(capacitances))
    if cls is ResistorShort:
        return ResistorShort(draw(names), draw(resistances))
    if cls is ResistorOpen:
        return ResistorOpen(draw(names))
    if cls is OxideBreakdown:
        return OxideBreakdown(draw(names), draw(terminals),
                              draw(terminals), draw(resistances))
    if cls is WireLeak:
        return WireLeak(draw(names), draw(names), draw(resistances))
    raise AssertionError(f"strategy missing for {cls.__name__}")


@settings(**COMMON)
@given(defects())
def test_defect_dict_roundtrip(defect):
    data = defect_to_dict(defect)
    assert data["class"] == type(defect).__name__
    assert defect_from_dict(data) == defect
    # ... and through real JSON text, the corpus wire format.
    assert defect_from_dict(json.loads(json.dumps(data))) == defect


CANONICAL = [
    Pipe("X1.Q3"),
    TerminalShort("X1.Q2", "c", "e"),
    Bridge("s0", "s1"),
    TerminalOpen("X1.Q1", "b"),
    ResistorShort("X1.R1"),
    ResistorOpen("X1.R2"),
    OxideBreakdown("X1.Q1"),
    WireLeak("LNK0.lw", "LNK0.lwb"),
]


def test_every_class_has_a_canonical_roundtrip():
    """Adding a defect class without serialization support must fail
    loudly here (the corpus depends on every class being storable)."""
    assert {type(d) for d in CANONICAL} == set(DEFECT_CLASSES)
    for defect in CANONICAL:
        assert defect_from_dict(defect_to_dict(defect)) == defect
        assert defect.kind and defect.family


def test_from_dict_rejects_unknown_class():
    with pytest.raises(ValueError, match="unknown defect class"):
        defect_from_dict({"class": "Gremlin"})


def _random_circuit(seed, n_gates, with_link):
    network = random_network(seed, n_gates=n_gates, n_inputs=2,
                             name=f"prop{seed}")
    design = synthesize(network, NOMINAL)
    circuit = design.circuit
    if with_link:
        pair = design.gate_output_pairs()[-1]
        attach_low_swing_link(circuit, *pair, swing_factor=0.6)
    return circuit


@settings(max_examples=15, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000),
       n_gates=st.integers(min_value=1, max_value=4),
       with_link=st.booleans())
def test_enumerate_defects_deterministic_and_valid(seed, n_gates,
                                                   with_link):
    circuit = _random_circuit(seed, n_gates, with_link)
    first = list(enumerate_defects(circuit))
    second = list(enumerate_defects(circuit))
    assert first == second
    assert first

    component_names = {c.name for c in circuit}
    nets = set(circuit.nets())
    for defect in first:
        if isinstance(defect, (Pipe, OxideBreakdown)):
            assert defect.transistor in component_names
            assert isinstance(circuit[defect.transistor],
                              (Bjt, MultiEmitterBjt))
        elif isinstance(defect, (TerminalShort, TerminalOpen)):
            assert defect.component in component_names
        elif isinstance(defect, (ResistorShort, ResistorOpen)):
            assert defect.resistor in component_names
            assert isinstance(circuit[defect.resistor], Resistor)
        elif isinstance(defect, (Bridge, WireLeak)):
            assert defect.net_a in nets and defect.net_b in nets
            assert defect.net_a != defect.net_b
        else:  # pragma: no cover - new family without a site check
            raise AssertionError(f"unchecked class {type(defect)}")

    if with_link:
        assert any(isinstance(d, WireLeak) for d in first)


@settings(max_examples=10, **COMMON)
@given(seed=st.integers(min_value=0, max_value=10_000),
       with_link=st.booleans())
def test_enumerated_defects_apply_cleanly(seed, with_link):
    circuit = _random_circuit(seed, 2, with_link)
    for defect in enumerate_defects(circuit):
        faulty = circuit.copy()
        defect.apply(faulty)
        assert len(faulty) > len(circuit)


@settings(max_examples=10, **COMMON)
@given(n_stages=st.integers(min_value=1, max_value=3))
def test_oxide_sites_track_transistor_count(n_stages):
    """Every BJT contributes exactly its two distinct base junctions."""
    chain = buffer_chain(NOMINAL, n_stages=n_stages)
    sites = list(enumerate_defects(chain.circuit,
                                   kinds=("oxide-breakdown",),
                                   oxide_resistances=(10e6,)))
    bjts = [c for c in chain.circuit
            if isinstance(c, (Bjt, MultiEmitterBjt))]
    expected = sum(
        sum(1 for t in ("c", "e") if c.net(t) != c.net("b"))
        for c in bjts)
    assert len(sites) == expected
    assert all(d.family == "oxide" for d in sites)
