"""Tests for the flat netlist container and topology operations."""

import pytest

from repro.circuit import (
    Bjt,
    Capacitor,
    Circuit,
    Resistor,
    SubCircuit,
    VoltageSource,
    instantiate,
)


def simple_divider() -> Circuit:
    circuit = Circuit("divider")
    circuit.add(VoltageSource("V1", "in", "0", 10.0))
    circuit.add(Resistor("R1", "in", "mid", 1000))
    circuit.add(Resistor("R2", "mid", "0", 1000))
    return circuit


class TestCircuitContainer:
    def test_add_and_lookup(self):
        circuit = simple_divider()
        assert circuit["R1"].resistance == 1000
        assert "R2" in circuit
        assert len(circuit) == 3

    def test_duplicate_name_rejected(self):
        circuit = simple_divider()
        with pytest.raises(ValueError, match="duplicate"):
            circuit.add(Resistor("R1", "a", "b", 1))

    def test_unknown_component_keyerror(self):
        with pytest.raises(KeyError, match="R99"):
            simple_divider()["R99"]

    def test_remove(self):
        circuit = simple_divider()
        removed = circuit.remove("R2")
        assert removed.name == "R2"
        assert "R2" not in circuit

    def test_components_of_type(self):
        circuit = simple_divider()
        assert len(circuit.components_of_type(Resistor)) == 2
        assert len(circuit.components_of_type(VoltageSource)) == 1

    def test_nets_order_and_content(self):
        nets = simple_divider().nets()
        assert nets == ["in", "0", "mid"]

    def test_unknown_nets_excludes_ground(self):
        assert "0" not in simple_divider().unknown_nets()

    def test_components_on_net(self):
        attached = simple_divider().components_on_net("mid")
        names = sorted((c.name, t) for c, t in attached)
        assert names == [("R1", "n"), ("R2", "p")]


class TestTerminalOperations:
    def test_net_accessor(self):
        r = Resistor("R", "a", "b", 100)
        assert r.net("p") == "a"

    def test_unknown_terminal(self):
        r = Resistor("R", "a", "b", 100)
        with pytest.raises(KeyError, match="unknown terminal"):
            r.net("x")

    def test_rewire(self):
        r = Resistor("R", "a", "b", 100)
        r.rewire("n", "c")
        assert r.net("n") == "c"

    def test_split_terminal(self):
        circuit = simple_divider()
        old, new = circuit.split_terminal("R2", "p")
        assert old == "mid"
        assert circuit["R2"].net("p") == new
        assert circuit["R1"].net("n") == "mid"
        assert new != "mid" and new.startswith("mid")

    def test_split_terminal_unique_names(self):
        circuit = simple_divider()
        _, first = circuit.split_terminal("R1", "n")
        _, second = circuit.split_terminal("R2", "p")
        assert first != second

    def test_merge_nets(self):
        circuit = simple_divider()
        circuit.merge_nets("in", "mid")
        assert circuit["R1"].net("n") == "in"
        assert circuit["R2"].net("p") == "in"
        assert "mid" not in circuit.nets()


class TestValidation:
    def test_clean_circuit_validates(self):
        assert simple_divider().validate() == []

    def test_dangling_net_detected(self):
        circuit = simple_divider()
        circuit.add(Resistor("R3", "mid", "dangling", 1))
        warnings = circuit.validate()
        assert any("dangling" in w for w in warnings)

    def test_missing_ground_detected(self):
        circuit = Circuit()
        circuit.add(Resistor("R1", "a", "b", 1))
        assert any("ground" in w for w in circuit.validate())

    def test_copy_is_independent(self):
        circuit = simple_divider()
        clone = circuit.copy()
        clone["R1"].rewire("n", "elsewhere")
        assert circuit["R1"].net("n") == "mid"


class TestComponentValidation:
    def test_resistor_rejects_short(self):
        with pytest.raises(ValueError, match="minimum"):
            Resistor("R", "a", "b", 0)

    def test_capacitor_rejects_negative(self):
        with pytest.raises(ValueError, match="positive"):
            Capacitor("C", "a", "b", -1e-12)

    def test_resistor_parses_string_value(self):
        assert Resistor("R", "a", "b", "4k").resistance == 4000.0

    def test_bjt_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Bjt("Q", "c", "b", "e", isat=-1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            Resistor("", "a", "b", 1)


class TestSubCircuit:
    def make_cell(self) -> SubCircuit:
        cell = SubCircuit("rc", ports=["inp", "out"])
        cell.circuit.add(Resistor("R", "inp", "out", 1000))
        cell.circuit.add(Capacitor("C", "out", "0", 1e-12))
        cell.circuit.add(Resistor("Rint", "out", "internal", 500))
        cell.circuit.add(Resistor("Rint2", "internal", "0", 500))
        return cell

    def test_instantiate_prefixes_names(self):
        parent = Circuit()
        cell = self.make_cell()
        inst = instantiate(parent, cell, "X1", {"inp": "a", "out": "b"})
        assert "X1.R" in parent
        assert parent["X1.R"].net("p") == "a"
        assert inst.port("out") == "b"

    def test_internal_nets_prefixed(self):
        parent = Circuit()
        instantiate(parent, self.make_cell(), "X1", {"inp": "a", "out": "b"})
        assert parent["X1.Rint"].net("n") == "X1.internal"

    def test_ground_is_global(self):
        parent = Circuit()
        instantiate(parent, self.make_cell(), "X1", {"inp": "a", "out": "b"})
        assert parent["X1.C"].net("n") == "0"

    def test_two_instances_independent(self):
        parent = Circuit()
        instantiate(parent, self.make_cell(), "X1", {"inp": "a", "out": "b"})
        instantiate(parent, self.make_cell(), "X2", {"inp": "b", "out": "c"})
        assert parent["X1.Rint"].net("n") != parent["X2.Rint"].net("n")
        assert len(parent) == 8

    def test_missing_port_rejected(self):
        parent = Circuit()
        with pytest.raises(ValueError, match="unconnected"):
            self.make_cell().instantiate(parent, "X1", {"inp": "a"})

    def test_unknown_port_rejected(self):
        parent = Circuit()
        with pytest.raises(ValueError, match="unknown ports"):
            self.make_cell().instantiate(
                parent, "X1", {"inp": "a", "out": "b", "bogus": "c"})

    def test_duplicate_ports_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            SubCircuit("bad", ports=["a", "a"])

    def test_instance_component_accessor(self):
        parent = Circuit()
        inst = instantiate(parent, self.make_cell(), "X1",
                           {"inp": "a", "out": "b"})
        assert inst.component("R") is parent["X1.R"]
        with pytest.raises(KeyError):
            inst.component("nope")

    def test_template_not_mutated_by_instance(self):
        parent = Circuit()
        cell = self.make_cell()
        instantiate(parent, cell, "X1", {"inp": "a", "out": "b"})
        assert cell.circuit["R"].net("p") == "inp"

    def test_internal_nets_listing(self):
        assert self.make_cell().internal_nets() == ["internal"]
