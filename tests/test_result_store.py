"""The content-addressed result store and its fingerprint keys.

Unit-level acceptance for the caching layer: exact round-trip of
record entries, durability across store instances, idempotent puts,
torn-tail tolerance, compaction/eviction GC — and the fingerprint
contract that makes cache hits *sound*: deterministic across rebuilt
objects and processes, sensitive to every electrically-relevant input,
insensitive to execution-only knobs.
"""

import json

import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import FlagOracle, IddqOracle, LogicOracle
from repro.sim import SimOptions
from repro.store import (
    EXECUTION_ONLY_OPTION_FIELDS,
    ResultStore,
    campaign_fingerprint,
    canonical,
    circuit_fingerprint,
    options_fingerprint,
    oracles_fingerprint,
    result_key,
)

ENTRY = {"schema": 1, "key": "pipe:X1.Q1:4000.0", "converged": True,
         "solver": "warm-full", "verdicts": {"logic": "pass"}}
OTHER = {"schema": 1, "key": "pipe:X1.Q2:4000.0", "converged": False,
         "solver": "none", "verdicts": {"logic": "fail"}}


def _instrumented(stages=2):
    chain = buffer_chain(NOMINAL, n_stages=stages, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=NOMINAL)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    return chain.circuit, oracles


class TestStoreBasics:
    def test_round_trip_is_exact(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        key = result_key("f" * 64, "pipe:X1.Q1:4000.0")
        assert store.get(key) is None
        assert store.put(key, ENTRY)
        assert store.get(key) == ENTRY
        assert key in store and len(store) == 1
        assert store.stats() == {"records": 1, "hits": 1, "misses": 1,
                                 "puts": 1, "dedup_skips": 0}

    def test_persists_across_instances(self, tmp_path):
        path = tmp_path / "store"
        with ResultStore(path) as store:
            store.put("k1", ENTRY)
            store.put("k2", OTHER)
        reopened = ResultStore(path)
        assert len(reopened) == 2
        assert reopened.get("k1") == ENTRY
        assert reopened.get("k2") == OTHER

    def test_puts_are_idempotent(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        assert store.put("k", ENTRY)
        assert not store.put("k", ENTRY)
        assert not store.put("k", OTHER)  # first write wins
        assert store.get("k") == ENTRY
        assert store.stats()["dedup_skips"] == 2
        # Only one line ever reached disk.
        lines = [line for seg in (tmp_path / "store" / "segments").iterdir()
                 for line in seg.read_text().splitlines()]
        assert len(lines) == 1

    def test_refresh_sees_other_writers(self, tmp_path):
        path = tmp_path / "store"
        reader = ResultStore(path)
        writer = ResultStore(path)  # a second process, effectively
        writer.put("k", ENTRY)
        assert "k" not in reader
        reader.refresh()
        assert reader.get("k") == ENTRY

    def test_torn_tail_is_skipped_not_fatal(self, tmp_path):
        path = tmp_path / "store"
        with ResultStore(path) as store:
            store.put("good", ENTRY)
            store._segment_file.write('{"type": "record", "key": "torn')
            store._segment_file.flush()
        survivor = ResultStore(path)
        assert len(survivor) == 1
        assert survivor.get("good") == ENTRY

    def test_non_record_lines_are_ignored(self, tmp_path):
        path = tmp_path / "store"
        seg_dir = path / "segments"
        seg_dir.mkdir(parents=True)
        (seg_dir / "seg-1-abc.jsonl").write_text(
            "\n".join([
                json.dumps({"type": "header", "schema": 1}),
                json.dumps(["a", "list"]),
                json.dumps({"type": "record", "key": 7, "entry": {}}),
                json.dumps({"type": "record", "key": "ok",
                            "entry": ENTRY}),
            ]) + "\n")
        store = ResultStore(path)
        assert len(store) == 1
        assert store.get("ok") == ENTRY

    def test_compact_merges_segments_to_one(self, tmp_path):
        path = tmp_path / "store"
        a, b = ResultStore(path), ResultStore(path)
        a.put("k1", ENTRY)
        b.put("k2", OTHER)
        a.close(), b.close()
        store = ResultStore(path)
        assert store.compact() == 2
        segments = list((path / "segments").glob("*.jsonl"))
        assert len(segments) == 1
        assert ResultStore(path).get("k1") == ENTRY

    def test_evict_drops_and_compacts(self, tmp_path):
        store = ResultStore(tmp_path / "store")
        store.put("keep", ENTRY)
        store.put("drop", OTHER)
        evicted = store.evict(lambda key, entry: key == "keep")
        assert evicted == 1
        reopened = ResultStore(tmp_path / "store")
        assert len(reopened) == 1
        assert reopened.get("keep") == ENTRY
        assert reopened.get("drop") is None

    def test_read_only_store_creates_no_segment(self, tmp_path):
        path = tmp_path / "store"
        ResultStore(path).get("missing")
        assert list((path / "segments").glob("*.jsonl")) == []


class TestFingerprints:
    def test_rebuilt_circuit_fingerprints_identically(self):
        circuit_a, oracles_a = _instrumented()
        circuit_b, oracles_b = _instrumented()
        assert circuit_a is not circuit_b
        assert circuit_fingerprint(circuit_a) == \
            circuit_fingerprint(circuit_b)
        assert campaign_fingerprint(circuit_a, SimOptions(), oracles_a) == \
            campaign_fingerprint(circuit_b, SimOptions(), oracles_b)

    def test_circuit_change_moves_the_fingerprint(self):
        two, _ = _instrumented(stages=2)
        three, _ = _instrumented(stages=3)
        assert circuit_fingerprint(two) != circuit_fingerprint(three)

    def test_solver_option_change_moves_the_fingerprint(self):
        assert options_fingerprint(SimOptions()) != \
            options_fingerprint(SimOptions(gmin=1e-10))
        # The deadline can turn a solve into a quarantine, so it is
        # part of the key.
        assert options_fingerprint(SimOptions()) != \
            options_fingerprint(SimOptions(solve_deadline_s=1e-9))

    def test_execution_only_options_do_not_move_it(self):
        base = options_fingerprint(SimOptions())
        assert options_fingerprint(SimOptions(chunk_timeout_s=5.0)) == base
        assert options_fingerprint(SimOptions(max_chunk_retries=7)) == base
        assert options_fingerprint(
            SimOptions(chunk_retry_backoff_s=9.0)) == base
        assert "telemetry" in EXECUTION_ONLY_OPTION_FIELDS

    def test_oracle_config_changes_move_the_fingerprint(self):
        _, oracles = _instrumented()
        loose = [oracles[0], oracles[1], IddqOracle(threshold=1e-3)]
        assert oracles_fingerprint(oracles) != oracles_fingerprint(loose)

    def test_namespace_partitions_the_scope(self):
        circuit, oracles = _instrumented()
        base = campaign_fingerprint(circuit, SimOptions(), oracles)
        scoped = campaign_fingerprint(circuit, SimOptions(), oracles,
                                      namespace="verify:legacy-dense")
        assert base != scoped

    def test_result_key_separates_defects_within_a_scope(self):
        circuit, oracles = _instrumented()
        fingerprint = campaign_fingerprint(circuit, SimOptions(), oracles)
        key_a = result_key(fingerprint, "pipe:X1.Q1:4000.0")
        key_b = result_key(fingerprint, "pipe:X1.Q2:4000.0")
        assert key_a != key_b
        assert key_a == result_key(fingerprint, "pipe:X1.Q1:4000.0")

    def test_canonical_is_order_insensitive_where_it_must_be(self):
        assert canonical({"b": 1, "a": 2}) == canonical({"a": 2, "b": 1})
        assert canonical({2, 1, 3}) == [1, 2, 3]
        assert canonical((1, 2)) == canonical([1, 2])

    def test_canonical_depth_cap_degrades_to_repr(self):
        nested = value = []
        for _ in range(12):
            value.append([])
            value = value[0]
        assert isinstance(json.dumps(canonical(nested)), str)


def test_fingerprint_args_order():
    # Guard the positional contract used throughout: (circuit, options,
    # oracles, namespace).
    circuit, oracles = _instrumented()
    with pytest.raises(TypeError):
        campaign_fingerprint(circuit, SimOptions())
