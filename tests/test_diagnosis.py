"""Tests for monitor-group fault localization (dft.diagnosis)."""

import pytest

from repro.circuit import VoltageSource
from repro.cml import NOMINAL
from repro.dft import (
    Candidate,
    Observation,
    candidate_space,
    diagnose,
    distinguishing_vectors,
    instrument_pairs,
)
from repro.faults import Bridge, inject
from repro.sim import operating_point
from repro.testgen import full_adder, synthesize

TECH = NOMINAL


class TestCandidateLogic:
    def test_candidate_assertion_semantics(self):
        op_side = Candidate("G", "op")
        opb_side = Candidate("G", "opb")
        assert op_side.asserted_by(False) is True
        assert op_side.asserted_by(True) is False
        assert opb_side.asserted_by(True) is True
        assert op_side.asserted_by(None) is None

    def test_candidate_space_size(self):
        network = full_adder()
        space = candidate_space(network, list(network.gates))
        assert len(space) == 2 * len(network.gates)

    def test_unknown_gate_rejected(self):
        with pytest.raises(KeyError):
            candidate_space(full_adder(), ["GHOST"])


class TestPureLogicDiagnosis:
    def _observations_for(self, network, candidate, vectors):
        """Synthesize ideal observations for a hypothetical fault."""
        observations = []
        output = network.gates[candidate.gate].output
        for vector in vectors:
            value = network.evaluate(vector)[output]
            observations.append(Observation(
                vector, candidate.asserted_by(value)))
        return observations

    def test_self_consistency(self):
        """Every candidate must survive its own ideal observations."""
        network = full_adder()
        group = list(network.gates)
        vectors = distinguishing_vectors(network, group)
        for candidate in candidate_space(network, group):
            observations = self._observations_for(network, candidate,
                                                  vectors)
            result = diagnose(network, group, observations)
            assert candidate in result.candidates

    def test_distinguishing_vectors_localize(self):
        """With the greedy vector set, most candidates become unique
        (structural aliases — gates with identical assertion patterns —
        may legitimately survive together)."""
        network = full_adder()
        group = list(network.gates)
        vectors = distinguishing_vectors(network, group)
        ambiguous = 0
        for candidate in candidate_space(network, group):
            observations = self._observations_for(network, candidate,
                                                  vectors)
            result = diagnose(network, group, observations)
            if len(result.candidates) > 1:
                ambiguous += 1
        assert ambiguous <= 2  # at most one aliased pair in the adder

    def test_contradictory_observations_empty(self):
        network = full_adder()
        group = list(network.gates)
        vector = {"a": True, "b": True, "cin": True}
        observations = [Observation(vector, True),
                        Observation(vector, False)]
        result = diagnose(network, group, observations)
        assert result.candidates == []

    def test_no_observations_keeps_everything(self):
        network = full_adder()
        group = ["A1", "O1"]
        result = diagnose(network, group, [])
        assert len(result.candidates) == 4
        assert not result.localized


class TestAnalogDiagnosis:
    """The full loop: analog flag readings localize a physical leak."""

    @pytest.fixture(scope="class")
    def setup(self):
        network = full_adder()
        design = synthesize(network, TECH)
        monitors = instrument_pairs(design.circuit,
                                    design.gate_output_pairs(), TECH)
        return network, design, monitors

    def _observe(self, design, monitors, vector, defect):
        circuit = design.circuit.copy()
        for signal, value in vector.items():
            p, n = design.pair(signal)
            vp = TECH.vhigh if value else TECH.vlow
            vn = TECH.vlow if value else TECH.vhigh
            circuit.add(VoltageSource(f"V_{signal}", p, "0", vp))
            circuit.add(VoltageSource(f"V_{signal}b", n, "0", vn))
        circuit = inject(circuit, defect)
        solution = operating_point(circuit)
        flag, flagb = monitors.flag_nets()[0]
        return solution.voltage(flag) < solution.voltage(flagb)

    def test_single_sided_leak_localized(self, setup):
        network, design, monitors = setup
        # Resistive leak from A1's positive output to vee: deepens only
        # the op side, asserted exactly when A1's output is logic 0.
        defect = Bridge("ab", "0", 8e3)
        group = list(network.gates)
        vectors = distinguishing_vectors(network, group)
        observations = [
            Observation(v, self._observe(design, monitors, v, defect))
            for v in vectors]
        result = diagnose(network, group, observations)
        assert result.localized
        assert result.candidates[0].gate == "A1"
        assert result.candidates[0].side == "op"

    def test_leak_on_other_gate_distinguished(self, setup):
        network, design, monitors = setup
        # Same defect class on the X1 XOR output ('axb').
        defect = Bridge("axb", "0", 8e3)
        group = list(network.gates)
        vectors = distinguishing_vectors(network, group)
        observations = [
            Observation(v, self._observe(design, monitors, v, defect))
            for v in vectors]
        result = diagnose(network, group, observations)
        assert "X1" in result.gates()
        assert "A1" not in result.gates()
