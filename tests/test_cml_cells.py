"""Functional tests of every CML library cell at the transistor level.

Each combinational cell is checked against its truth table by DC-solving
the cell with static differential inputs at the proper levels; clocked
cells are checked with transient simulation.
"""

import itertools

import pytest

from repro.circuit import Circuit, Pulse, VoltageSource
from repro.circuit.subcircuit import instantiate
from repro.cml import (
    NOMINAL,
    VCS_NET,
    VGND_NET,
    and2_cell,
    buffer_cell,
    dff_cell,
    inverter_cell,
    latch_cell,
    level_shifter_cell,
    mux2_cell,
    or2_cell,
    transistor_count,
    xor2_cell,
)
from repro.sim import operating_point, transient

TECH = NOMINAL


def _levels(value: bool, shifted: bool = False):
    """(positive, negative) drive voltages for one differential input."""
    high = TECH.low_level_high() if shifted else TECH.vhigh
    low = TECH.low_level_low() if shifted else TECH.vlow
    return (high, low) if value else (low, high)


def _solve_cell(cell, input_values, shifted_ports=()):
    """DC-solve ``cell`` with static inputs; returns (vop, vopb)."""
    circuit = Circuit()
    TECH.add_supplies(circuit)
    connections = {VGND_NET: VGND_NET, VCS_NET: VCS_NET}
    for (port_p, port_n), value in input_values.items():
        shifted = port_p in shifted_ports
        vp, vn = _levels(value, shifted)
        circuit.add(VoltageSource(f"V{port_p}", f"n_{port_p}", "0", vp))
        circuit.add(VoltageSource(f"V{port_n}", f"n_{port_n}", "0", vn))
        connections[port_p] = f"n_{port_p}"
        connections[port_n] = f"n_{port_n}"
    out_ports = cell.logic_outputs[0]
    connections[out_ports[0]] = "out_p"
    connections[out_ports[1]] = "out_n"
    instantiate(circuit, cell, "U1", connections)
    op = operating_point(circuit)
    return op.voltage("out_p"), op.voltage("out_n")


def _logic(vop, vopb) -> bool:
    return vop > vopb


class TestBufferCell:
    def test_follows_input(self):
        cell = buffer_cell(TECH)
        for value in (False, True):
            vop, vopb = _solve_cell(cell, {("a", "ab"): value})
            assert _logic(vop, vopb) == value

    def test_output_levels_nominal(self):
        vop, vopb = _solve_cell(buffer_cell(TECH), {("a", "ab"): True})
        assert vop == pytest.approx(TECH.vhigh, abs=0.01)
        assert vopb == pytest.approx(TECH.vlow, abs=0.02)

    def test_swing_matches_technology(self):
        vop, vopb = _solve_cell(buffer_cell(TECH), {("a", "ab"): False})
        assert vopb - vop == pytest.approx(TECH.swing, rel=0.05)

    def test_tail_current_programmed(self):
        circuit = Circuit()
        TECH.add_supplies(circuit)
        circuit.add(VoltageSource("VA", "va", "0", TECH.vhigh))
        circuit.add(VoltageSource("VAB", "vab", "0", TECH.vlow))
        instantiate(circuit, buffer_cell(TECH), "X", {
            "a": "va", "ab": "vab", "op": "op", "opb": "opb",
            VGND_NET: VGND_NET, VCS_NET: VCS_NET})
        op = operating_point(circuit)
        info = op.operating_info("X.Q3")
        assert info["ic"] == pytest.approx(TECH.itail, rel=0.02)
        assert info["vbe"] == pytest.approx(TECH.vbe_on, abs=0.005)

    def test_transistor_count(self):
        assert transistor_count(buffer_cell(TECH)) == 3


class TestInverterCell:
    def test_inverts(self):
        cell = inverter_cell(TECH)
        for value in (False, True):
            vop, vopb = _solve_cell(cell, {("a", "ab"): value})
            assert _logic(vop, vopb) == (not value)


class TestLevelShifter:
    def test_shifts_one_vbe(self):
        circuit = Circuit()
        TECH.add_supplies(circuit)
        circuit.add(VoltageSource("VI", "vi", "0", TECH.vhigh))
        instantiate(circuit, level_shifter_cell(TECH), "LS", {
            "inp": "vi", "out": "vo", VGND_NET: VGND_NET})
        op = operating_point(circuit)
        assert TECH.vhigh - op.voltage("vo") == pytest.approx(TECH.vbe_on,
                                                              abs=0.03)

    def test_preserves_swing(self):
        def shifted(level):
            circuit = Circuit()
            TECH.add_supplies(circuit)
            circuit.add(VoltageSource("VI", "vi", "0", level))
            instantiate(circuit, level_shifter_cell(TECH), "LS", {
                "inp": "vi", "out": "vo", VGND_NET: VGND_NET})
            return operating_point(circuit).voltage("vo")

        swing_out = shifted(TECH.vhigh) - shifted(TECH.vlow)
        assert swing_out == pytest.approx(TECH.swing, rel=0.08)


class TestTwoLevelGates:
    @pytest.mark.parametrize("a,b", list(itertools.product([False, True],
                                                           repeat=2)))
    def test_and2_truth_table(self, a, b):
        vop, vopb = _solve_cell(and2_cell(TECH),
                                {("a", "ab"): a, ("bl", "blb"): b},
                                shifted_ports=("bl",))
        assert _logic(vop, vopb) == (a and b)

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True],
                                                           repeat=2)))
    def test_or2_truth_table(self, a, b):
        vop, vopb = _solve_cell(or2_cell(TECH),
                                {("a", "ab"): a, ("bl", "blb"): b},
                                shifted_ports=("bl",))
        assert _logic(vop, vopb) == (a or b)

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True],
                                                           repeat=2)))
    def test_xor2_truth_table(self, a, b):
        vop, vopb = _solve_cell(xor2_cell(TECH),
                                {("a", "ab"): a, ("bl", "blb"): b},
                                shifted_ports=("bl",))
        assert _logic(vop, vopb) == (a != b)

    @pytest.mark.parametrize("a,b,s", list(itertools.product([False, True],
                                                             repeat=3)))
    def test_mux2_truth_table(self, a, b, s):
        vop, vopb = _solve_cell(
            mux2_cell(TECH),
            {("a", "ab"): a, ("b", "bb"): b, ("sl", "slb"): s},
            shifted_ports=("sl",))
        assert _logic(vop, vopb) == (b if s else a)

    @pytest.mark.parametrize("a,b", list(itertools.product([False, True],
                                                           repeat=2)))
    def test_and2_outputs_complementary(self, a, b):
        vop, vopb = _solve_cell(and2_cell(TECH),
                                {("a", "ab"): a, ("bl", "blb"): b},
                                shifted_ports=("bl",))
        assert abs((vop - vopb)) == pytest.approx(TECH.swing, rel=0.15)


def _clocked_fixture(cell, data_wave, clock_frequency):
    """Build a transient testbench for a latch/DFF with shifted clock."""
    circuit = Circuit()
    TECH.add_supplies(circuit)
    high, low = TECH.low_level_high(), TECH.low_level_low()
    circuit.add(VoltageSource("VCLK", "clkl", "0",
                              Pulse.square(low, high, clock_frequency)))
    circuit.add(VoltageSource("VCLKB", "clklb", "0",
                              Pulse.square(high, low, clock_frequency)))
    circuit.add(VoltageSource("VD", "d", "0", data_wave[0]))
    circuit.add(VoltageSource("VDB", "db", "0", data_wave[1]))
    ports = {"clkl": "clkl", "clklb": "clklb", "d": "d", "db": "db",
             VGND_NET: VGND_NET, VCS_NET: VCS_NET}
    out = cell.logic_outputs[0]
    ports[out[0]] = "q"
    ports[out[1]] = "qb"
    instantiate(circuit, cell, "U1", ports)
    return circuit


class TestSequentialCells:
    def test_latch_tracks_and_holds(self):
        # Data toggles at 50 MHz, clock at 100 MHz: the latch output must
        # follow d during clk-high and freeze during clk-low.
        data = (Pulse.square(TECH.vlow, TECH.vhigh, 50e6),
                Pulse.square(TECH.vhigh, TECH.vlow, 50e6))
        circuit = _clocked_fixture(latch_cell(TECH), data, 100e6)
        result = transient(circuit, t_stop=40e-9, dt=40e-12)
        q = result.wave("q")
        qb = result.wave("qb")
        # The latch output toggles (data gets through).
        assert (q - qb).swing() > 0.8 * TECH.swing
        # And is complementary.
        mid_levels = q.window(20e-9, 40e-9).levels()
        assert mid_levels[1] - mid_levels[0] > 0.5 * TECH.swing

    def test_dff_captures_on_rising_edge(self):
        # d toggles at half the clock rate: q must be d delayed by a cycle
        # pattern, i.e. toggle at the same rate with a bounded lag.
        data = (Pulse.square(TECH.vlow, TECH.vhigh, 50e6),
                Pulse.square(TECH.vhigh, TECH.vlow, 50e6))
        circuit = _clocked_fixture(dff_cell(TECH), data, 100e6)
        result = transient(circuit, t_stop=60e-9, dt=40e-12)
        q_diff = result.wave("q") - result.wave("qb")
        crossings = q_diff.crossings(0.0, "both", after=15e-9)
        assert len(crossings) >= 3
        # Output edges land only near clock rising edges (10 ns period):
        clk = result.wave("clkl") - result.wave("clklb")
        clock_edges = clk.crossings(0.0, "rise")
        for t in crossings:
            assert min(abs(t - e) for e in clock_edges) < 1.5e-9

    def test_dff_transistor_count(self):
        assert transistor_count(dff_cell(TECH)) == 14


class TestCellMetadata:
    def test_all_cells_carry_logic_metadata(self):
        from repro.cml import CELL_BUILDERS
        for name, builder in CELL_BUILDERS.items():
            cell = builder(TECH)
            assert cell.cell_type == name
            assert cell.logic_inputs
            assert cell.logic_outputs

    def test_combinational_eval_matches_python_semantics(self):
        assert and2_cell(TECH).logic_eval(True, True) == (True,)
        assert or2_cell(TECH).logic_eval(False, False) == (False,)
        assert xor2_cell(TECH).logic_eval(True, False) == (True,)
        assert mux2_cell(TECH).logic_eval(True, False, True) == (False,)

    def test_sequential_flags(self):
        assert latch_cell(TECH).is_sequential
        assert dff_cell(TECH).is_sequential
        assert not buffer_cell(TECH).is_sequential
