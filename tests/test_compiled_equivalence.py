"""Equivalence tests for the compiled stamping engine.

The compiled (vectorised, pattern-cached) path and the legacy
per-component stamping loop must produce the same physics: identical
operating points on every library cell, on faulted circuits, and over
transient runs — on both the dense and the sparse solver paths.  These
tests pin that contract; ``SimOptions(use_compiled=False)`` selects the
legacy reference engine.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, VoltageSource
from repro.circuit.subcircuit import instantiate
from repro.cml import NOMINAL, VCS_NET, VGND_NET, buffer_chain
from repro.cml.cells import CELL_BUILDERS
from repro.dft import build_shared_monitor
from repro.faults import (
    FlagOracle,
    IddqOracle,
    LogicOracle,
    Pipe,
    enumerate_defects,
    run_campaign,
)
from repro.faults.injector import inject
from repro.sim import operating_point, transient
from repro.sim.options import SimOptions

TECH = NOMINAL
DENSE = 10_000  # sparse_threshold forcing the dense path
SPARSE = 1      # sparse_threshold forcing the sparse path


def _cell_bench(cell) -> Circuit:
    """A DC testbench around ``cell``: rails plus driven inputs."""
    circuit = Circuit(f"bench_{cell.name}")
    TECH.add_supplies(circuit)
    connections = {}
    for rail in (VGND_NET, VCS_NET):
        if rail in cell.ports:
            connections[rail] = rail
    for i, (port_p, port_n) in enumerate(cell.logic_inputs):
        shifted = port_p.endswith("l")
        high = TECH.low_level_high() if shifted else TECH.vhigh
        low = TECH.low_level_low() if shifted else TECH.vlow
        vp, vn = (high, low) if i % 2 == 0 else (low, high)
        circuit.add(VoltageSource(f"V{port_p}", f"n_{port_p}", "0", vp))
        connections[port_p] = f"n_{port_p}"
        if port_n != port_p:  # single-ended ports drive one net only
            circuit.add(VoltageSource(f"V{port_n}", f"n_{port_n}", "0", vn))
            connections[port_n] = f"n_{port_n}"
    for j, (out_p, out_n) in enumerate(cell.logic_outputs):
        connections[out_p] = f"out{j}_p"
        if out_n != out_p:
            connections[out_n] = f"out{j}_n"
    instantiate(circuit, cell, "U1", connections)
    return circuit


def _solve_all_ways(circuit):
    """Operating points from every engine × solver-path combination."""
    return {
        (engine, path): operating_point(
            circuit, SimOptions(use_compiled=(engine == "compiled"),
                                sparse_threshold=threshold))
        for engine in ("compiled", "legacy")
        for path, threshold in (("dense", DENSE), ("sparse", SPARSE))
    }


def _assert_equivalent(circuit):
    solutions = _solve_all_ways(circuit)
    reference = solutions[("legacy", "dense")]
    for key, solution in solutions.items():
        if key == ("legacy", "dense"):
            continue
        for net, value in reference.voltages().items():
            assert solution.voltage(net) == pytest.approx(value, abs=1e-7), (
                f"{key}: net {net}")
        for name in reference.structure.branch_index:
            assert solution.branch_current(name) == pytest.approx(
                reference.branch_current(name), abs=1e-9), (
                f"{key}: branch {name}")


@pytest.mark.parametrize("cell_name", sorted(CELL_BUILDERS))
def test_cell_operating_points_equivalent(cell_name):
    """Compiled/legacy × dense/sparse agree on every library cell."""
    cell = CELL_BUILDERS[cell_name](TECH)
    _assert_equivalent(_cell_bench(cell))


def test_injected_pipe_circuit_equivalent():
    """The engines agree on a fault-injected (pipe) chain too."""
    chain = buffer_chain(TECH, n_stages=3, frequency=100e6)
    faulty = inject(chain.circuit, Pipe("X2.Q3", 4e3))
    _assert_equivalent(faulty)


def test_transient_equivalent():
    """Compiled and legacy transient runs agree along the whole trace."""
    chain = buffer_chain(TECH, n_stages=2, frequency=1e9)
    kwargs = dict(t_stop=1e-9, dt=4e-12)
    legacy = transient(chain.circuit, options=SimOptions(use_compiled=False),
                       **kwargs)
    compiled = transient(chain.circuit, options=SimOptions(), **kwargs)
    assert np.allclose(legacy.states, compiled.states, atol=1e-6)
    sparse = transient(chain.circuit,
                       options=SimOptions(sparse_threshold=SPARSE), **kwargs)
    assert np.allclose(legacy.states, sparse.states, atol=1e-6)


@pytest.fixture(scope="module")
def detector_campaign():
    """The Fig-13 shared-detector campaign setup (chain + oracles)."""
    chain = buffer_chain(TECH, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=TECH)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(chain.circuit,
                                     kinds=("pipe", "terminal-short"),
                                     pipe_resistances=(4e3,)))
    return chain.circuit, defects, oracles


def test_parallel_campaign_identical(detector_campaign):
    """parallel=True returns records and coverage identical to serial.

    workers=2 forces a real process pool (pickling and all) even on
    single-core hosts; on platforms without multiprocessing the fallback
    reruns serially, which trivially keeps the equality.
    """
    circuit, defects, oracles = detector_campaign
    serial = run_campaign(circuit, defects, oracles)
    parallel = run_campaign(circuit, defects, oracles,
                            parallel=True, workers=2)
    assert parallel.records == serial.records
    assert parallel.coverage_matrix() == serial.coverage_matrix()
    assert parallel.oracle_names == serial.oracle_names


def test_warm_start_reduces_iterations(detector_campaign):
    """Warm-starting from the fault-free OP cuts Newton iterations."""
    circuit, defects, oracles = detector_campaign
    warm = run_campaign(circuit, defects, oracles, warm_start=True)
    cold = run_campaign(circuit, defects, oracles, warm_start=False)
    warm_total = sum(r.newton_iterations for r in warm.records if r.converged)
    cold_total = sum(r.newton_iterations for r in cold.records if r.converged)
    assert warm_total > 0
    assert warm_total < cold_total
