"""Fault-equivalence collapsing and vector-set compaction.

Collapsing claims *exact* equivalence — every pair of faults it puts in
one class must be indistinguishable at the observed nets for every
input vector.  That claim is checked here by exhaustive simulation on
small seeded networks.  Compaction claims it never loses a detected
fault; the detect matrix before and after must agree.
"""

import random

import pytest

from repro.testgen import (LogicNetwork, collapse_faults, compact_vectors,
                           enumerate_stuck_faults, exhaustive_vectors,
                           fault_detect_matrix, full_adder, random_network)

SWEEP_SEEDS = range(6)


def _network(seed):
    rng = random.Random(seed)
    return random_network(rng, n_gates=rng.randint(5, 12),
                          n_inputs=rng.randint(3, 6),
                          name=f"collapse{seed}")


def _detect_signature(network, fault, vectors, observed):
    """Which (vector, observed net) pairs expose ``fault`` — the full
    behavioural fingerprint equivalence must preserve."""
    masks = {}
    for net in observed:
        mask = fault_detect_matrix(network, vectors, faults=[fault],
                                   observed=[net])[fault]
        masks[net] = mask
    return masks


class TestEquivalenceCollapsing:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_classes_are_exact(self, seed):
        network = _network(seed)
        vectors = list(exhaustive_vectors(network.primary_inputs))
        observed = network.primary_outputs
        classes = collapse_faults(network)
        for rep, members in classes.classes.items():
            reference = _detect_signature(network, rep, vectors, observed)
            for member in members:
                assert _detect_signature(network, member, vectors,
                                         observed) == reference, \
                    f"{member.describe()} not equivalent to " \
                    f"{rep.describe()}"

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_collapsing_partitions_the_fault_list(self, seed):
        network = _network(seed)
        faults = enumerate_stuck_faults(network)
        classes = collapse_faults(network)
        members = [f for rep in classes.representatives
                   for f in classes.classes[rep]]
        assert sorted(members, key=lambda f: (f.net, f.value)) == \
            sorted(faults, key=lambda f: (f.net, f.value))
        assert len(set(members)) == len(members)
        for fault in faults:
            assert classes.class_of(fault) in classes.representatives

    def test_observed_nets_are_never_collapsed_through(self):
        """A detector on the AND input tells sa0 on the input apart
        from sa0 on the output, so observation must block the merge."""
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("G", "and2", ["a", "b"], "y")
        net.add_output("y")
        merged = collapse_faults(net)
        kept = collapse_faults(net, observed=net.signals())
        assert len(kept.representatives) > len(merged.representatives)
        assert all(len(m) == 1 for m in kept.classes.values())

    def test_and_gate_textbook_collapse(self):
        # a-sa0, b-sa0 and y-sa0 of an AND are one class.
        net = LogicNetwork()
        net.add_input("a")
        net.add_input("b")
        net.add_gate("G", "and2", ["a", "b"], "y")
        net.add_output("y")
        classes = collapse_faults(net)
        from repro.testgen import StuckFault
        rep = classes.class_of(StuckFault("y", False))
        assert classes.class_of(StuckFault("a", False)) == rep
        assert classes.class_of(StuckFault("b", False)) == rep
        # ...but the sa1 faults stay distinct from each other.
        assert classes.class_of(StuckFault("a", True)) != \
            classes.class_of(StuckFault("b", True))


class TestVectorCompaction:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_detected_fault_set_is_preserved(self, seed):
        network = _network(seed)
        rng = random.Random(seed + 100)
        vectors = [{pi: bool(rng.getrandbits(1))
                    for pi in network.primary_inputs}
                   for _ in range(48)]
        compacted = compact_vectors(network, vectors)
        before = fault_detect_matrix(network, vectors)
        after = fault_detect_matrix(network, compacted)
        assert {f for f, m in before.items() if m} == \
            {f for f, m in after.items() if m}
        assert len(compacted) <= len(vectors)

    def test_compaction_actually_shrinks_redundant_sets(self):
        network = full_adder()
        vectors = list(exhaustive_vectors(network.primary_inputs)) * 3
        compacted = compact_vectors(network, vectors)
        assert len(compacted) < len(set(map(
            lambda v: tuple(sorted(v.items())), vectors)))

    def test_empty_vector_set(self):
        assert compact_vectors(full_adder(), []) == []
