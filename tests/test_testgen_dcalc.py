"""Five-valued D-calculus truth tables, pinned per library cell.

The calculus is the semantic foundation of the PODEM engine: every
entry of every cell's 5-valued truth table is checked against an
independent two-machine reference (good and faulty copies enumerated
over all binary completions of the X inputs), and the classic
propagation identities are pinned explicitly so a sign error cannot
hide inside the derived tables.
"""

import itertools

import pytest

from repro.cml.cells import CELL_BUILDERS
from repro.testgen import D, DBAR, FIVE_VALUES, ONE, X, ZERO, dcalc_eval
from repro.testgen.dcalc import (controlling_assignments, fault_value,
                                 from_pair, truth_table)
from repro.testgen.logic import LogicNetwork

COMBINATIONAL = sorted(LogicNetwork.COMBINATIONAL)


def _cell_eval(cell_type):
    template = CELL_BUILDERS[cell_type]()
    return template.logic_eval, len(template.logic_inputs)


def _reference(eval_fn, inputs):
    """Two independent machines, exhaustive X-completion per machine."""
    def component(values):
        unknown = [i for i, v in enumerate(values) if v is None]
        seen = set()
        for bits in itertools.product([False, True], repeat=len(unknown)):
            complete = list(values)
            for where, bit in zip(unknown, bits):
                complete[where] = bit
            seen.add(eval_fn(*complete)[0])
        return seen.pop() if len(seen) == 1 else None

    return from_pair(component([v.good for v in inputs]),
                     component([v.faulty for v in inputs]))


class TestTruthTables:
    @pytest.mark.parametrize("cell_type", COMBINATIONAL)
    def test_every_row_matches_two_machine_reference(self, cell_type):
        eval_fn, n_inputs = _cell_eval(cell_type)
        for row in itertools.product(FIVE_VALUES, repeat=n_inputs):
            assert dcalc_eval(eval_fn, row) is _reference(eval_fn, row), \
                f"{cell_type}{tuple(v.symbol for v in row)}"

    @pytest.mark.parametrize("cell_type", COMBINATIONAL)
    def test_binary_rows_reduce_to_boolean_function(self, cell_type):
        """On {0,1} inputs the calculus is just the cell's function."""
        eval_fn, n_inputs = _cell_eval(cell_type)
        lift = {False: ZERO, True: ONE}
        for bits in itertools.product([False, True], repeat=n_inputs):
            expected = lift[eval_fn(*bits)[0]]
            assert dcalc_eval(eval_fn, [lift[b] for b in bits]) is expected

    def test_truth_table_helper_is_complete(self):
        eval_fn, n_inputs = _cell_eval("and2")
        table = truth_table(eval_fn, n_inputs)
        assert len(table) == 5 ** n_inputs
        assert table[("D", "1")] == "D"
        assert table[("D", "0")] == "0"
        assert table[("D", "X")] == "X"


class TestPropagationIdentities:
    """The classic D-calculus identities, written out by hand."""

    def test_and2(self):
        eval_fn, _ = _cell_eval("and2")
        assert dcalc_eval(eval_fn, [D, ONE]) is D
        assert dcalc_eval(eval_fn, [D, ZERO]) is ZERO
        assert dcalc_eval(eval_fn, [D, D]) is D
        assert dcalc_eval(eval_fn, [D, DBAR]) is ZERO
        assert dcalc_eval(eval_fn, [ZERO, X]) is ZERO

    def test_or2(self):
        eval_fn, _ = _cell_eval("or2")
        assert dcalc_eval(eval_fn, [D, ZERO]) is D
        assert dcalc_eval(eval_fn, [D, ONE]) is ONE
        assert dcalc_eval(eval_fn, [D, DBAR]) is ONE
        assert dcalc_eval(eval_fn, [ONE, X]) is ONE

    def test_inverter_and_buffer(self):
        inv, _ = _cell_eval("inverter")
        buf, _ = _cell_eval("buffer")
        assert dcalc_eval(inv, [D]) is DBAR
        assert dcalc_eval(inv, [DBAR]) is D
        assert dcalc_eval(inv, [X]) is X
        assert dcalc_eval(buf, [D]) is D

    def test_xor2(self):
        eval_fn, _ = _cell_eval("xor2")
        assert dcalc_eval(eval_fn, [D, ZERO]) is D
        assert dcalc_eval(eval_fn, [D, ONE]) is DBAR
        assert dcalc_eval(eval_fn, [D, D]) is ZERO
        assert dcalc_eval(eval_fn, [D, DBAR]) is ONE

    def test_mux2_routes_the_selected_error(self):
        eval_fn, _ = _cell_eval("mux2")
        # mux2 inputs: (a, b, select) — select=0 routes a, 1 routes b.
        assert dcalc_eval(eval_fn, [D, ZERO, ZERO]) is D
        assert dcalc_eval(eval_fn, [D, ZERO, ONE]) is ZERO
        # Equal data dominate an unknown select, even carrying an error.
        assert dcalc_eval(eval_fn, [D, D, X]) is D


class TestCalculusPrimitives:
    def test_from_pair_canonicalizes_partial_knowledge_to_x(self):
        assert from_pair(True, None) is X
        assert from_pair(None, False) is X
        assert from_pair(True, False) is D
        assert from_pair(False, True) is DBAR
        assert from_pair(True, True) is ONE
        assert from_pair(False, False) is ZERO

    def test_fault_activation(self):
        # A stuck-at-v site carries an error only when driven to not-v.
        assert fault_value(True, False) is DBAR
        assert fault_value(False, True) is D
        assert fault_value(True, True) is ONE
        assert fault_value(False, False) is ZERO
        assert fault_value(True, None) is X

    def test_error_and_known_flags(self):
        assert D.is_error and DBAR.is_error
        assert not ONE.is_error and not ZERO.is_error
        assert not X.is_known and ONE.is_known

    def test_controlling_assignments(self):
        and2, _ = _cell_eval("and2")
        or2, _ = _cell_eval("or2")
        buf, _ = _cell_eval("buffer")
        assert controlling_assignments(and2, 2, 0) == (True,)
        assert controlling_assignments(or2, 2, 1) == (False,)
        assert controlling_assignments(buf, 1, 0) == ()

    def test_atpg_flat_tables_agree_with_dcalc_eval(self):
        """The engine's precomputed base-5 tables are exactly the
        calculus — the perf path cannot drift from the reference."""
        from repro.testgen.atpg import _cell_table

        for cell_type in COMBINATIONAL:
            eval_fn, n_inputs = _cell_eval(cell_type)
            flat = _cell_table(cell_type, eval_fn, n_inputs)
            assert len(flat) == 5 ** n_inputs
            for row_index, row in enumerate(
                    itertools.product(FIVE_VALUES, repeat=n_inputs)):
                assert flat[row_index] is dcalc_eval(eval_fn, row)
