"""Scenario generator: determinism, serialization, buildability."""

import pytest

from repro.faults.defects import defect_from_dict, defect_to_dict, Pipe
from repro.testgen import random_network
from repro.verify import (
    GeneratorConfig,
    Scenario,
    ScenarioError,
    build_scenario,
    load_scenario,
    random_scenario,
    save_scenario,
)

SEEDS = range(6)


def test_random_network_deterministic():
    a = random_network(7, n_gates=5, n_inputs=3)
    b = random_network(7, n_gates=5, n_inputs=3)
    assert [(g.name, g.cell_type, g.inputs, g.output)
            for g in a.gates.values()] == \
           [(g.name, g.cell_type, g.inputs, g.output)
            for g in b.gates.values()]
    assert a.primary_outputs == b.primary_outputs


def test_random_network_well_formed():
    for seed in range(20):
        net = random_network(seed, n_gates=6, n_inputs=3)
        net.validate()
        assert net.primary_outputs, "every network must expose a sink"
        # Combinational only: the analog build drives inputs with DC.
        assert not list(net.sequential_gates())


def test_random_scenario_deterministic():
    assert random_scenario(42) == random_scenario(42)
    assert random_scenario(42) != random_scenario(43)


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_dict_roundtrip(seed):
    scenario = random_scenario(seed)
    rebuilt = Scenario.from_dict(scenario.to_dict())
    assert rebuilt == scenario


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_file_roundtrip(seed, tmp_path):
    scenario = random_scenario(seed)
    path = tmp_path / "scenario.json"
    save_scenario(scenario, path)
    assert load_scenario(path) == scenario


@pytest.mark.parametrize("seed", SEEDS)
def test_scenario_builds(seed):
    scenario = random_scenario(seed)
    built = build_scenario(scenario)
    # Every primary input is driven differentially.
    for k in range(scenario.n_inputs):
        assert f"V_i{k}" in built.circuit
        assert f"V_i{k}b" in built.circuit
    assert len(built.output_pairs) == len(scenario.gates)
    if scenario.detector_variant == 3:
        assert built.monitor is not None
    elif scenario.detector_variant in (1, 2):
        assert built.detector is not None
    assert len(built.defects) == len(scenario.defects)


def test_defect_dict_roundtrip():
    pipe = Pipe("G0.Q3", 4e3)
    data = defect_to_dict(pipe)
    assert data["class"] == "Pipe"
    assert defect_from_dict(data) == pipe


def test_defect_from_dict_rejects_unknown():
    with pytest.raises(ValueError, match="unknown defect class"):
        defect_from_dict({"class": "Nope"})


def test_bad_schema_rejected():
    data = random_scenario(0).to_dict()
    data["schema"] = 999
    with pytest.raises(ScenarioError, match="schema"):
        Scenario.from_dict(data)


def test_invalid_defect_site_rejected():
    scenario = random_scenario(0).with_(
        defects=(defect_to_dict(Pipe("NOT_A_DEVICE.Q1")),))
    with pytest.raises(ScenarioError, match="defect site"):
        build_scenario(scenario)


def test_generator_respects_config():
    config = GeneratorConfig(max_gates=2, max_inputs=1, max_defects=1,
                             detector_variants=(3,),
                             transient_fraction=0.0)
    for seed in range(10):
        scenario = random_scenario(seed, config)
        assert 1 <= len(scenario.gates) <= 2
        assert scenario.n_inputs == 1
        assert len(scenario.defects) <= 1
        assert scenario.detector_variant == 3
        assert scenario.transient is None
