"""Temperature-behaviour tests: device physics and CML corner operation."""

import pytest

from repro.circuit import Bjt, Circuit
from repro.circuit.devices import (
    TNOM_C,
    isat_temperature_factor,
    thermal_voltage,
)
from repro.cml import CmlTechnology, buffer_chain
from repro.sim import operating_point, run_cycles


def vbe_at(temperature_c: float, current: float = 0.5e-3) -> float:
    """VBE of a diode-connected transistor forced with ``current``."""
    from repro.circuit import CurrentSource

    circuit = Circuit()
    circuit.add(CurrentSource("IB", "0", "b", current))
    circuit.add(Bjt("Q1", "b", "b", "0", isat=4e-19,
                    temperature_c=temperature_c))
    op = operating_point(circuit)
    return op.voltage("b")


class TestDevicePhysics:
    def test_thermal_voltage_scaling(self):
        assert thermal_voltage(TNOM_C) == pytest.approx(0.025852)
        assert thermal_voltage(126.85) == pytest.approx(
            0.025852 * 400.0 / 300.0)

    def test_isat_factor_is_one_at_nominal(self):
        assert isat_temperature_factor(TNOM_C) == pytest.approx(1.0)

    def test_isat_grows_steeply_with_temperature(self):
        assert isat_temperature_factor(TNOM_C + 50) > 100
        assert isat_temperature_factor(TNOM_C - 50) < 1e-2

    def test_vbe_falls_with_temperature(self):
        """The bipolar thermometer: dVBE/dT ~ (VBE - EG - 3VT)/T, about
        -1 mV/°C at this technology's high 900 mV bias point (the
        textbook -2 mV/°C applies to ~600 mV junctions)."""
        low = vbe_at(0.0)
        high = vbe_at(100.0)
        slope = (high - low) / 100.0
        assert -2.0e-3 < slope < -0.7e-3

    def test_vbe_nominal_calibration_unchanged(self):
        assert vbe_at(TNOM_C) == pytest.approx(0.9, abs=0.002)


class TestCmlAcrossCorners:
    @pytest.mark.parametrize("temperature", [-40.0, 26.85, 125.0])
    def test_chain_functional_at_corner(self, temperature):
        """With the tracking bias generator the chain keeps its nominal
        swing from -40 to 125 °C."""
        tech = CmlTechnology(temperature_c=temperature)
        chain = buffer_chain(tech, n_stages=4, frequency=100e6)
        result = run_cycles(chain.circuit, 100e6, cycles=2.5,
                            points_per_cycle=300)
        swing = result.wave("op3").window(10e-9, 25e-9).swing()
        assert swing == pytest.approx(tech.swing, rel=0.1)

    def test_tail_current_tracks(self):
        for temperature in (-40.0, 125.0):
            tech = CmlTechnology(temperature_c=temperature)
            chain = buffer_chain(tech, n_stages=1)
            op = operating_point(chain.circuit)
            info = op.operating_info("X1.Q3")
            assert info["ic"] == pytest.approx(tech.itail, rel=0.05)

    def test_vcs_decreases_with_temperature(self):
        hot = CmlTechnology(temperature_c=125.0)
        cold = CmlTechnology(temperature_c=-40.0)
        assert hot.vcs < cold.vcs

    def test_detector_corner_operation(self):
        """The variant-3 monitor still separates good from faulty at the
        hot corner (detector thresholds shift with VT but the verdict
        survives)."""
        from repro.dft import build_shared_monitor
        from repro.faults import Pipe, inject

        tech = CmlTechnology(temperature_c=125.0)
        chain = buffer_chain(tech, n_stages=4, frequency=100e6)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                       tech=tech)
        op_clean = operating_point(chain.circuit)
        assert (op_clean.voltage(monitor.nets.flag)
                > op_clean.voltage(monitor.nets.flagb))
        faulty = inject(chain.circuit, Pipe("X2.Q3", 4e3))
        op_faulty = operating_point(faulty)
        assert (op_faulty.voltage(monitor.nets.flag)
                < op_faulty.voltage(monitor.nets.flagb))
