"""Tests for DC sweep analysis and static hysteresis tracing."""

import numpy as np
import pytest

from repro.circuit import Circuit, Resistor, VoltageSource
from repro.circuit.subcircuit import instantiate
from repro.cml import NOMINAL, VCS_NET, VGND_NET, buffer_cell
from repro.dft import attach_comparator, ensure_vtest
from repro.sim import dc_sweep, hysteresis_sweep

TECH = NOMINAL


def divider() -> Circuit:
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "in", "0", 0.0))
    circuit.add(Resistor("R1", "in", "out", 1000))
    circuit.add(Resistor("R2", "out", "0", 3000))
    return circuit


class TestLinearSweep:
    def test_divider_line(self):
        result = dc_sweep(divider(), "V1", np.linspace(0, 4, 9))
        assert np.allclose(result.voltage("out"), 0.75 * result.values)

    def test_transfer_pairs(self):
        result = dc_sweep(divider(), "V1", [1.0, 2.0])
        assert result.transfer("out") == pytest.approx([(1.0, 0.75),
                                                        (2.0, 1.5)])

    def test_original_circuit_untouched(self):
        circuit = divider()
        dc_sweep(circuit, "V1", [5.0])
        assert circuit["V1"].waveform.dc() == 0.0

    def test_bad_source(self):
        with pytest.raises(TypeError):
            dc_sweep(divider(), "R1", [1.0])

    def test_empty_values(self):
        with pytest.raises(ValueError):
            dc_sweep(divider(), "V1", [])

    def test_as_waveform_crossings(self):
        result = dc_sweep(divider(), "V1", np.linspace(0, 4, 41))
        wave = result.as_waveform("out")
        crossing = wave.first_crossing(1.5, "rise")
        assert crossing == pytest.approx(2.0, abs=0.01)

    def test_as_waveform_rejects_non_monotonic(self):
        result = dc_sweep(divider(), "V1", [0.0, 2.0, 1.0])
        with pytest.raises(ValueError):
            result.as_waveform("out")

    def test_decreasing_sweep_reversed(self):
        result = dc_sweep(divider(), "V1", [4.0, 2.0, 0.0])
        wave = result.as_waveform("out")
        assert wave.times[0] == 0.0
        assert wave.values[-1] == pytest.approx(3.0)


class TestGateVtc:
    def test_buffer_switching_threshold(self):
        """The buffer's static VTC switches where the input crosses the
        reference (the complementary input held at vmid)."""
        circuit = Circuit()
        TECH.add_supplies(circuit)
        circuit.add(VoltageSource("VIN", "a", "0", TECH.vlow))
        circuit.add(VoltageSource("VREF", "ab", "0", TECH.vmid))
        instantiate(circuit, buffer_cell(TECH), "X1", {
            "a": "a", "ab": "ab", "op": "op", "opb": "opb",
            VGND_NET: VGND_NET, VCS_NET: VCS_NET})
        result = dc_sweep(circuit, "VIN",
                          np.linspace(TECH.vlow, TECH.vhigh, 51))
        vtc = result.as_waveform("op")
        threshold = vtc.first_crossing(TECH.vmid, "rise")
        assert threshold == pytest.approx(TECH.vmid, abs=0.01)

    def test_vtc_saturates_at_rails(self):
        circuit = Circuit()
        TECH.add_supplies(circuit)
        circuit.add(VoltageSource("VIN", "a", "0", TECH.vlow))
        circuit.add(VoltageSource("VREF", "ab", "0", TECH.vmid))
        instantiate(circuit, buffer_cell(TECH), "X1", {
            "a": "a", "ab": "ab", "op": "op", "opb": "opb",
            VGND_NET: VGND_NET, VCS_NET: VCS_NET})
        result = dc_sweep(circuit, "VIN",
                          np.linspace(TECH.vlow, TECH.vhigh, 21))
        curve = result.voltage("op")
        assert curve[0] == pytest.approx(TECH.vlow, abs=0.02)
        assert curve[-1] == pytest.approx(TECH.vhigh, abs=0.01)


class TestStaticHysteresis:
    def test_comparator_branches_differ(self):
        """The DC counterpart of Fig. 12: forward and backward sweeps of
        the forced vout switch at different input values."""
        circuit = Circuit()
        TECH.add_supplies(circuit)
        ensure_vtest(circuit, TECH)
        circuit.add(VoltageSource("VFORCE", "vout", "0", TECH.vtest))
        nets = attach_comparator(circuit, "vout", tech=TECH)

        down, up = hysteresis_sweep(circuit, "VFORCE",
                                    start=TECH.vtest, stop=3.3, points=81)
        flag_down = down.voltage(nets.flag) - down.voltage(nets.flagb)
        flag_up = up.voltage(nets.flag) - up.voltage(nets.flagb)

        # Switch points along each branch.
        switch_down = down.values[np.argmax(flag_down < 0)]
        switch_up = up.values[len(flag_up) - 1 - np.argmax(flag_up[::-1] < 0)]
        assert switch_up > switch_down
        band = switch_up - switch_down
        assert 0.005 < band < 0.1

    def test_static_band_matches_transient(self):
        """Static and transient hysteresis characterisations agree."""
        from repro.analysis import fig12_hysteresis

        transient_result = fig12_hysteresis()

        circuit = Circuit()
        TECH.add_supplies(circuit)
        ensure_vtest(circuit, TECH)
        circuit.add(VoltageSource("VFORCE", "vout", "0", TECH.vtest))
        nets = attach_comparator(circuit, "vout", tech=TECH)
        down, up = hysteresis_sweep(circuit, "VFORCE",
                                    start=TECH.vtest, stop=3.3, points=161)
        flag_down = down.voltage(nets.flag) - down.voltage(nets.flagb)
        flag_up = up.voltage(nets.flag) - up.voltage(nets.flagb)
        switch_down = down.values[np.argmax(flag_down < 0)]
        switch_up = up.values[len(flag_up) - 1 - np.argmax(flag_up[::-1] < 0)]

        assert switch_down == pytest.approx(
            transient_result.detect_threshold, abs=0.01)
        assert switch_up == pytest.approx(
            transient_result.release_threshold, abs=0.01)
