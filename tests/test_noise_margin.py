"""Tests for the static noise-margin analysis (section 2 claims)."""

import numpy as np
import pytest

from repro.cml import NOMINAL, buffer_vtc, noise_margins

TECH = NOMINAL


class TestVtc:
    def test_vtc_monotone_noninverting(self):
        vin, vout = buffer_vtc(TECH, points=101)
        assert vout[0] < vout[-1]
        # Smooth and monotone through the transition.
        assert np.all(np.diff(vout) > -1e-6)

    def test_vtc_rails(self):
        vin, vout = buffer_vtc(TECH, points=101)
        assert vout[0] == pytest.approx(TECH.vlow, abs=0.02)
        assert vout[-1] == pytest.approx(TECH.vhigh, abs=0.01)

    def test_differential_vtc_steeper(self):
        vin_s, vout_s = buffer_vtc(TECH, points=101)
        vin_d, vout_d = buffer_vtc(TECH, points=101, differential=True)
        gain_s = np.abs(np.gradient(vout_s, vin_s)).max()
        gain_d = np.abs(np.gradient(vout_d, vin_d)).max()
        assert gain_d == pytest.approx(2 * gain_s, rel=0.15)


class TestNoiseMargins:
    def test_margins_positive_and_symmetric(self):
        margins = noise_margins(TECH)
        assert margins.nm_low > 0.02
        assert margins.nm_high > 0.02
        assert margins.nm_low == pytest.approx(margins.nm_high, rel=0.15)

    def test_differential_increases_margins(self):
        """Section 2: the differential representation 'increases the
        gate's noise margin' — measured ~1.7x here."""
        single = noise_margins(TECH)
        differential = noise_margins(TECH, differential=True)
        assert differential.total > 1.4 * single.total

    def test_levels_inside_swing(self):
        margins = noise_margins(TECH)
        assert TECH.vlow < margins.vil < margins.vih < TECH.vhigh

    def test_total_is_sum(self):
        margins = noise_margins(TECH)
        assert margins.total == pytest.approx(margins.nm_low
                                              + margins.nm_high)
