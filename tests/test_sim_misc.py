"""Coverage of the smaller engine pieces: options, sweep driver,
reporting helpers, transient step-halving and source edge cases."""


import pytest

from repro.analysis.reporting import (
    format_series,
    format_table,
    nanoseconds,
    picoseconds,
)
from repro.circuit import (
    Capacitor,
    Circuit,
    Dc,
    Prbs,
    Pulse,
    Pwl,
    Resistor,
    Sine,
    VoltageSource,
)
from repro.sim import SimOptions, run_cycles, sweep, transient
from repro.sim.options import DEFAULT_OPTIONS


class TestOptions:
    def test_gmin_ladder_descends_to_gmin(self):
        ladder = SimOptions().gmin_ladder()
        assert ladder[0] == pytest.approx(1e-2)
        assert ladder[-1] == pytest.approx(1e-12)
        assert all(a > b for a, b in zip(ladder, ladder[1:]))

    def test_custom_gmin_ladder(self):
        options = SimOptions(gmin_start=1e-4, gmin=1e-10, gmin_factor=100)
        ladder = options.gmin_ladder()
        assert len(ladder) == 4  # 1e-4, 1e-6, 1e-8, 1e-10

    def test_defaults_are_shared_instance(self):
        assert DEFAULT_OPTIONS.reltol == 1e-3


class TestSweepDriver:
    def test_factorial_grid(self):
        def build(r, v):
            circuit = Circuit()
            circuit.add(VoltageSource("V1", "in", "0", v))
            circuit.add(Resistor("R1", "in", "out", r))
            circuit.add(Resistor("R2", "out", "0", 1000))
            return circuit

        def run(circuit, params):
            return transient(circuit, 1e-9, 1e-10)

        def measure(result, params):
            return {"vout": result.wave("out").values[-1]}

        result = sweep(build, {"r": [1000, 3000], "v": [1.0, 2.0]},
                       run, measure)
        assert len(result.points) == 4
        series = result.series("v", "vout", r=1000)
        assert series == [(1.0, pytest.approx(0.5)),
                          (2.0, pytest.approx(1.0))]
        assert result.param_values("r") == [1000, 3000]

    def test_point_getitem(self):
        from repro.sim.sweep import SweepPoint

        point = SweepPoint(params={"f": 1.0}, measures={"y": 2.0})
        assert point["f"] == 1.0
        assert point["y"] == 2.0
        with pytest.raises(KeyError):
            point["zap"]


class TestReportingHelpers:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], [30, None]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "-" in lines[1]
        assert lines[3].endswith("-")  # None renders as '-'

    def test_format_table_title(self):
        text = format_table(["x"], [[1]], title="T")
        assert text.splitlines()[0] == "T"

    def test_format_series(self):
        text = format_series("s", [(1.0, 2.0)], "f", "v")
        assert "f -> v" in text
        assert "1" in text and "2" in text

    def test_unit_helpers(self):
        assert picoseconds(53e-12) == pytest.approx(53.0)
        assert nanoseconds(12.8e-9) == pytest.approx(12.8)
        assert picoseconds(None) is None
        assert nanoseconds(None) is None


class TestTransientRobustness:
    def test_step_halving_recovers(self):
        """A step too coarse for the source edge must be refined, not
        aborted: the result still resolves the edge."""
        circuit = Circuit()
        circuit.add(VoltageSource(
            "V1", "in", "0",
            Pwl([(0.0, 0.0), (1.0e-9, 0.0), (1.001e-9, 5.0),
                 (3e-9, 5.0)])))
        circuit.add(Resistor("R1", "in", "out", 100))
        circuit.add(Capacitor("C1", "out", "0", 1e-12))
        result = transient(circuit, 3e-9, 0.5e-9)
        # The BE restart at the breakpoint damps the trapezoidal ringing;
        # residual oscillation at this deliberately coarse step (5x the
        # circuit tau) stays within a quarter volt and decays.
        assert result.wave("out").values[-1] == pytest.approx(5.0, abs=0.25)
        late = result.wave("out").window(1.4e-9, 3e-9)
        assert late.maximum() < 6.0

    def test_run_cycles_kwargs_passthrough(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", Dc(1.0)))
        circuit.add(Resistor("R1", "in", "out", 1000))
        circuit.add(Capacitor("C1", "out", "0", 1e-12))
        result = run_cycles(circuit, 1e9, cycles=1.0, points_per_cycle=20,
                            cap_overrides={"C1": 0.5})
        # The consistency step pins the first stored sample near 0.5 V.
        assert result.wave("out").values[0] == pytest.approx(0.5, abs=0.05)

    def test_unknown_cap_override_rejected(self):
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", Dc(1.0)))
        circuit.add(Resistor("R1", "in", "out", 1000))
        circuit.add(Capacitor("C1", "out", "0", 1e-12))
        with pytest.raises(KeyError):
            transient(circuit, 1e-9, 1e-10, cap_overrides={"C9": 0.0})


class TestSourceEdgeCases:
    def test_pulse_validation(self):
        with pytest.raises(ValueError):
            Pulse(0, 1, rise=0.0)
        with pytest.raises(ValueError):
            Pulse(0, 1, width=-1e-9)
        with pytest.raises(ValueError):
            Pulse(0, 1, rise=1e-9, fall=1e-9, width=5e-9, period=3e-9)

    def test_pulse_single_shot(self):
        pulse = Pulse(0, 1, rise=1e-10, fall=1e-10, width=1e-9, period=0)
        assert pulse.value(0.5e-9) == 1.0
        assert pulse.value(10e-9) == 0.0

    def test_sine_validation(self):
        with pytest.raises(ValueError):
            Sine(0, 1, frequency=0)

    def test_sine_delay_holds(self):
        wave = Sine(1.0, 0.5, 1e9, delay=1e-9)
        assert wave.value(0.5e-9) == wave.value(0.0)

    def test_pwl_validation(self):
        with pytest.raises(ValueError):
            Pwl([(0, 1)])
        with pytest.raises(ValueError):
            Pwl([(0, 1), (0, 2)])

    def test_prbs_validation(self):
        with pytest.raises(ValueError):
            Prbs(0, 1, 1e-9, order=6)
        with pytest.raises(ValueError):
            Prbs(0, 1, 1e-9, seed=0)

    def test_prbs_period_and_levels(self):
        prbs = Prbs(0.0, 1.0, 1e-9, order=7, seed=3)
        values = {prbs.value(t * 1e-9 + 0.5e-9) for t in range(127)}
        assert values == {0.0, 1.0}
        # Bit sequence repeats with the LFSR period.
        assert prbs.bit(5) == prbs.bit(5 + 127)

    def test_breakpoints_cover_edges(self):
        pulse = Pulse(0, 1, delay=1e-9, rise=1e-10, fall=1e-10,
                      width=1e-9, period=5e-9)
        points = pulse.breakpoints(6e-9)
        assert any(abs(p - 1e-9) < 1e-12 for p in points)
        assert all(0 < p < 6e-9 for p in points)

    def test_dc_breakpoints_empty(self):
        assert Dc(1.0).breakpoints(1e-6) == []
