"""Tests of patterns, toggle coverage, initialization and sensitization."""

import pytest

from repro.testgen import (
    Lfsr,
    ToggleCoverage,
    compact_plan,
    convergence_length,
    converges_from_x,
    coverage_growth,
    exhaustive_vectors,
    find_toggle_pair,
    full_adder,
    initialization_sequence,
    johnson_counter,
    measure_toggle_coverage,
    mux_select_tree,
    parity_tree,
    random_vectors,
    sensitization_plan,
    sequential_decider,
    shift_register,
    LogicNetwork,
)


class TestLfsr:
    def test_maximal_period(self):
        lfsr = Lfsr(order=7, seed=1)
        states = set()
        for _ in range(lfsr.period):
            states.add(lfsr.state)
            lfsr.next_bit()
        assert len(states) == 127
        assert lfsr.state == 1  # back to the seed

    def test_deterministic(self):
        assert Lfsr(7, seed=5).bits(32) == Lfsr(7, seed=5).bits(32)

    def test_different_seeds_differ(self):
        assert Lfsr(7, seed=5).bits(32) != Lfsr(7, seed=9).bits(32)

    def test_balanced_bits(self):
        bits = Lfsr(15, seed=1).bits(4096)
        ones = sum(bits)
        assert 0.45 < ones / len(bits) < 0.55

    def test_bad_order(self):
        with pytest.raises(ValueError):
            Lfsr(order=6)

    def test_bad_seed(self):
        with pytest.raises(ValueError):
            Lfsr(order=7, seed=0)

    def test_words_width(self):
        words = Lfsr(16, seed=3).words(10, width=4)
        assert len(words) == 10
        assert all(0 <= w < 16 for w in words)


class TestRandomVectors:
    def test_shape_and_keys(self):
        vectors = random_vectors(["a", "b", "c"], 20, seed=2)
        assert len(vectors) == 20
        assert all(set(v) == {"a", "b", "c"} for v in vectors)

    def test_exhaustive_counts(self):
        assert len(list(exhaustive_vectors(["a", "b", "c"]))) == 8

    def test_exhaustive_unique(self):
        vectors = [tuple(sorted(v.items()))
                   for v in exhaustive_vectors(["a", "b"])]
        assert len(set(vectors)) == 4


class TestToggleCoverage:
    def test_full_coverage_on_full_adder_exhaustive(self):
        net = full_adder()
        coverage = measure_toggle_coverage(
            net, exhaustive_vectors(net.primary_inputs))
        assert coverage.coverage == 1.0
        assert coverage.untoggled() == []

    def test_random_patterns_reach_full_coverage(self):
        net = parity_tree(8)
        vectors = random_vectors(net.primary_inputs, 64, seed=4)
        coverage = measure_toggle_coverage(net, vectors)
        assert coverage.coverage == 1.0

    def test_constant_input_leaves_holes(self):
        net = full_adder()
        vectors = [{"a": True, "b": True, "cin": True}] * 10
        coverage = measure_toggle_coverage(net, vectors)
        assert coverage.coverage < 1.0
        assert coverage.untoggled()

    def test_growth_curve_monotone(self):
        net = parity_tree(4)
        vectors = random_vectors(net.primary_inputs, 32, seed=6)
        curve = coverage_growth(net, vectors)
        assert all(b >= a for a, b in zip(curve, curve[1:]))
        assert curve[-1] == 1.0

    def test_sequential_coverage_with_random_patterns(self):
        """The paper's sequential recipe: random patterns give good toggle
        coverage once the circuit is initialized."""
        net = shift_register(4)
        net.reset(False)
        vectors = random_vectors(["sin"], 64, seed=8)
        coverage = measure_toggle_coverage(net, vectors)
        assert coverage.coverage == 1.0

    def test_restricted_watch_list(self):
        net = full_adder()
        coverage = measure_toggle_coverage(
            net, exhaustive_vectors(net.primary_inputs), signals=["sum"])
        assert coverage.signals == ["sum"]
        assert coverage.coverage == 1.0

    def test_empty_signals_coverage_is_one(self):
        assert ToggleCoverage(signals=[]).coverage == 1.0


class TestInitialization:
    def test_shift_register_converges_from_x(self):
        net = shift_register(4)
        vectors = random_vectors(["sin"], 16, seed=5)
        result = converges_from_x(net, vectors)
        assert result.converged
        assert result.cycles == 4  # needs exactly its depth

    def test_replica_convergence(self):
        net = shift_register(4)
        vectors = random_vectors(["sin"], 32, seed=5)
        result = convergence_length(net, vectors, replicas=4)
        assert result.converged
        assert result.cycles <= 4

    def test_decider_converges(self):
        net = sequential_decider()
        length = initialization_sequence(net, max_vectors=64)
        assert length is not None

    def test_johnson_counter_replicas_disagree_without_input(self):
        """A free-running ring never forgets its phase: convergence needs
        the randomizing input path (en toggling)."""
        net = johnson_counter(4)
        constant = [{"en": True}] * 40
        result = convergence_length(net, constant, replicas=4)
        assert not result.converged

    def test_no_flops_trivially_converged(self):
        net = full_adder()
        result = convergence_length(net, [{"a": True, "b": True,
                                           "cin": True}])
        assert result.converged
        assert result.cycles == 0


class TestSensitization:
    def test_full_adder_all_gates_testable(self):
        net = full_adder()
        pairs, untestable = sensitization_plan(net)
        assert untestable == []
        assert len(pairs) == len(net.gates)

    def test_pairs_actually_toggle(self):
        net = full_adder()
        pairs, _ = sensitization_plan(net)
        for pair in pairs:
            low = net.evaluate(pair.vector_low)[pair.target]
            high = net.evaluate(pair.vector_high)[pair.target]
            assert low is False and high is True

    def test_untestable_gate_reported(self):
        net = LogicNetwork()
        net.add_input("a")
        net.add_gate("INV", "inverter", ["a"], "na")
        net.add_gate("DEAD", "and2", ["a", "na"], "x")  # a AND !a == 0
        pair = find_toggle_pair(net, "DEAD")
        assert pair is None
        _, untestable = sensitization_plan(net)
        assert untestable == ["DEAD"]

    def test_sequential_gate_rejected(self):
        net = shift_register(2)
        with pytest.raises(ValueError, match="sequential"):
            find_toggle_pair(net, "F0")

    def test_compact_plan_dedupes(self):
        net = mux_select_tree()
        pairs, _ = sensitization_plan(net)
        plan = compact_plan(pairs)
        assert len(plan) <= 2 * len(pairs)
        # Replaying the compacted plan still toggles every gate output.
        coverage = measure_toggle_coverage(net, plan)
        assert coverage.coverage == 1.0
