"""Tests for the SPICE deck parser, including write→read round trips."""


import pytest

from repro.circuit import Bjt, Capacitor, Circuit, Diode, Pulse, Resistor, VoltageSource
from repro.circuit.spice import to_spice
from repro.circuit.spice_reader import SpiceParseError, from_spice, read_spice
from repro.cml import NOMINAL, buffer_chain
from repro.faults import Pipe, inject
from repro.sim import operating_point, transient


class TestBasicParsing:
    def test_title_line(self):
        circuit = from_spice("my amplifier\nR1 a 0 1k\n.end\n")
        assert circuit.title == "my amplifier"
        assert "R1" in circuit

    def test_elements(self):
        deck = """test
R1 in out 4k
C1 out 0 10p IC=0.5
V1 in 0 DC 3.3
I1 out 0 1m
.end
"""
        circuit = from_spice(deck)
        assert circuit["R1"].resistance == 4000.0
        assert circuit["C1"].capacitance == pytest.approx(10e-12)
        assert circuit["C1"].ic == 0.5
        assert circuit["V1"].waveform.dc() == 3.3
        assert circuit["I1"].waveform.dc() == pytest.approx(1e-3)

    def test_comments_and_continuations(self):
        deck = """* full comment deck
* another comment
R1 a b 1k
+
V1 a 0
+ DC 5
.end
"""
        circuit = from_spice(deck)
        assert circuit["V1"].waveform.dc() == 5.0

    def test_models_resolved_regardless_of_order(self):
        deck = """t
Q1 c b 0 mynpn
D1 a c mydio
.model mynpn NPN(IS=1e-16 BF=150)
.model mydio D(IS=2e-15 N=1.5)
R1 a 0 1k
R2 c 0 1k
V1 b 0 1
.end
"""
        circuit = from_spice(deck)
        assert circuit["Q1"].isat == pytest.approx(1e-16)
        assert circuit["Q1"].beta_f == 150
        assert circuit["D1"].isat == pytest.approx(2e-15)
        assert circuit["D1"].nvt == pytest.approx(1.5 * 0.025852)

    def test_pulse_source(self):
        deck = "t\nV1 a 0 PULSE(0 1 1n 0.1n 0.1n 4n 10n)\nR1 a 0 1k\n.end\n"
        waveform = from_spice(deck)["V1"].waveform
        assert isinstance(waveform, Pulse)
        assert waveform.v2 == 1.0
        assert waveform.period == pytest.approx(1e-8)

    def test_sin_source(self):
        deck = "t\nV1 a 0 SIN(1 0.5 1e6 0 0 90)\nR1 a 0 1k\n.end\n"
        waveform = from_spice(deck)["V1"].waveform
        assert waveform.value(0.0) == pytest.approx(1.5)  # 90 deg phase

    def test_pwl_source(self):
        deck = "t\nV1 a 0 PWL(0 0 1e-9 2.0)\nR1 a 0 1k\n.end\n"
        waveform = from_spice(deck)["V1"].waveform
        assert waveform.value(0.5e-9) == pytest.approx(1.0)


class TestErrors:
    def test_unknown_element(self):
        with pytest.raises(SpiceParseError, match="unsupported element"):
            from_spice("t\nL1 a 0 1u\n.end\n")

    def test_unknown_model(self):
        with pytest.raises(SpiceParseError, match="unknown NPN model"):
            from_spice("t\nQ1 c b 0 ghost\n.end\n")

    def test_short_card(self):
        with pytest.raises(SpiceParseError, match="R needs"):
            from_spice("t\nR1 a\n.end\n")

    def test_unsupported_dotcard(self):
        with pytest.raises(SpiceParseError, match="dot-card"):
            from_spice("t\n.tran 1n 10n\n.end\n")

    def test_orphan_continuation(self):
        with pytest.raises(SpiceParseError, match="continuation"):
            from_spice("+ R1 a 0 1\n")

    def test_error_reports_line_number(self):
        with pytest.raises(SpiceParseError) as excinfo:
            from_spice("t\nR1 a 0 1k\nL1 a 0 1u\n.end\n")
        assert excinfo.value.line_number == 3


class TestRoundTrip:
    def test_simple_circuit_op_matches(self):
        original = Circuit("rt")
        original.add(VoltageSource("V1", "in", "0", 5.0))
        original.add(Resistor("R1", "in", "d", 1000))
        original.add(Diode("D1", "d", "0", isat=1e-15))
        original.add(Bjt("Q1", "in", "d", "e"))
        original.add(Resistor("RE", "e", "0", 2000))

        parsed = from_spice(to_spice(original))
        op_a = operating_point(original)
        op_b = operating_point(parsed)
        for net in ("in", "d", "e"):
            # Exported names carry element-kind prefixes; nets match 1:1.
            assert op_b.voltage(net) == pytest.approx(op_a.voltage(net),
                                                      abs=1e-6)

    def test_cml_chain_roundtrip_dc(self):
        chain = buffer_chain(NOMINAL, n_stages=4)
        faulty = inject(chain.circuit, Pipe("X1.Q3", 4e3))
        parsed = from_spice(to_spice(faulty))
        op_a = operating_point(faulty)
        op_b = operating_point(parsed)
        for net in ("op1", "opb1", "op4", "opb4"):
            assert op_b.voltage(net) == pytest.approx(op_a.voltage(net),
                                                      abs=1e-4)

    def test_roundtrip_transient(self):
        original = Circuit("pulse-rt")
        original.add(VoltageSource("V1", "in", "0",
                                   Pulse(0, 1, rise=1e-10, fall=1e-10,
                                         width=4e-9, period=1e-8)))
        original.add(Resistor("R1", "in", "out", 1000))
        original.add(Capacitor("C1", "out", "0", 1e-12))
        parsed = from_spice(to_spice(original))
        result_a = transient(original, 5e-9, 1e-11)
        result_b = transient(parsed, 5e-9, 1e-11)
        for t in (1e-9, 2.5e-9, 4.5e-9):
            assert result_b.wave("out").value_at(t) == pytest.approx(
                result_a.wave("out").value_at(t), abs=1e-4)

    def test_read_spice_file(self, tmp_path):
        path = tmp_path / "d.cir"
        path.write_text("t\nR1 a 0 1k\nV1 a 0 DC 1\n.end\n")
        circuit = read_spice(str(path))
        assert operating_point(circuit).voltage("a") == pytest.approx(1.0)
