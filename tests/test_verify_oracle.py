"""Cross-engine oracle matrix: clean scenarios agree, injected bugs
are caught (and shrunk to a minimal reproducer)."""

import pytest

from repro.sim.mna import MnaStamper
from repro.verify import (
    DEFAULT_ENGINES,
    EngineConfig,
    GeneratorConfig,
    Tolerances,
    cross_check,
    fuzz_session,
    parse_budget,
    random_scenario,
)

#: The matrix without the parallel engine: monkeypatched bugs do not
#: propagate into worker processes, and workers slow unit tests down.
SERIAL_ENGINES = tuple(e for e in DEFAULT_ENGINES if not e.parallel)


def test_engine_matrix_covers_required_axes():
    names = {e.name for e in DEFAULT_ENGINES}
    assert "compiled-dense" in names            # baseline
    assert "legacy-dense" in names              # compiled vs legacy
    assert any(e.delta for e in DEFAULT_ENGINES)     # delta vs full
    assert any(e.parallel for e in DEFAULT_ENGINES)  # serial vs parallel


def test_engine_options_force_backends():
    from repro.sim import SimOptions
    base = SimOptions()
    sparse = EngineConfig("s", sparse=True).options(base)
    dense = EngineConfig("d", sparse=False).options(base)
    assert sparse.sparse_threshold <= 1
    assert dense.sparse_threshold >= 10_000
    legacy = EngineConfig("l", use_compiled=False).options(base)
    assert not legacy.use_compiled


@pytest.mark.parametrize("seed", range(4))
def test_clean_scenarios_agree(seed):
    result = cross_check(random_scenario(seed), SERIAL_ENGINES)
    assert result.ok, result.format()
    assert result.n_engine_pairs >= len(SERIAL_ENGINES) - 1
    assert result.n_checks > 0


def test_defective_scenario_exercises_campaign_check():
    config = GeneratorConfig(transient_fraction=0.0)
    for seed in range(30):
        scenario = random_scenario(seed, config)
        if scenario.defects:
            break
    else:
        pytest.fail("no defective scenario in seed range")
    result = cross_check(scenario, SERIAL_ENGINES)
    assert result.ok, result.format()


def test_injected_stamping_bug_is_caught_and_shrunk():
    """The headline acceptance test: corrupt the legacy stamping path
    (conductances scaled by 2%) and require the oracle matrix to flag
    compiled-vs-legacy and the shrinker to reduce the reproducer to a
    trivial circuit."""
    original = MnaStamper.conductance

    def corrupted(self, net_a, net_b, conductance):
        original(self, net_a, net_b, conductance * 1.02)

    MnaStamper.conductance = corrupted
    try:
        report = fuzz_session(seed=0, budget_s=120, max_scenarios=3,
                              engines=SERIAL_ENGINES, max_failures=1)
    finally:
        MnaStamper.conductance = original
    assert not report.ok, "2% conductance error must not survive"
    failure = report.failures[0]
    kinds = {d.kind for d in failure.result.disagreements}
    assert "op" in kinds or "verdict" in kinds
    engines = {d.engine_b for d in failure.result.disagreements
               if d.kind == "op"}
    assert "legacy-dense" in engines
    assert len(failure.shrunk.gates) <= 3
    # The shrunk scenario still reproduces under a fresh check.
    recheck = cross_check(failure.shrunk, SERIAL_ENGINES)
    assert recheck.ok, "bug was unpatched, shrunk scenario must pass now"


def test_loosened_tolerance_hides_small_bug():
    """Tolerances are an explicit dial: the same 2% bug disappears when
    op_abs is opened wide (guards against silently-loose defaults)."""
    original = MnaStamper.conductance

    def corrupted(self, net_a, net_b, conductance):
        original(self, net_a, net_b, conductance * 1.02)

    scenario = random_scenario(0)
    MnaStamper.conductance = corrupted
    try:
        engines = SERIAL_ENGINES[:2]  # compiled vs legacy only
        tight = cross_check(scenario, engines)
        loose = cross_check(scenario, engines,
                            tolerances=Tolerances(op_abs=1.0))
    finally:
        MnaStamper.conductance = original
    assert not tight.ok
    assert not any(d.kind == "op" for d in loose.disagreements)


def test_disagreement_serializes():
    from repro.verify import Disagreement
    d = Disagreement(kind="op", engine_a="a", engine_b="b",
                     where="n1", value_a=1.0, value_b=2.0,
                     tolerance=1e-6)
    data = d.to_dict()
    assert data["kind"] == "op" and data["where"] == "n1"
    assert "a vs b" in d.format()


def test_parse_budget():
    assert parse_budget("60s") == 60.0
    assert parse_budget("2m") == 120.0
    assert parse_budget("1h") == 3600.0
    assert parse_budget("300") == 300.0
    with pytest.raises(ValueError):
        parse_budget("soon")


def test_fuzz_session_reports_counts():
    report = fuzz_session(seed=7, budget_s=30, max_scenarios=4,
                          engines=SERIAL_ENGINES)
    assert report.ok, report.format()
    assert report.n_scenarios == 4
    assert report.n_engine_pairs > 0
    assert "4 scenarios" in report.format()
