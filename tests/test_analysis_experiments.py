"""Integration tests of the experiment runners (reduced parameters).

The benchmarks assert the paper's claims at default scale; these tests
pin the runners' APIs and result invariants at the smallest settings so
regressions surface inside the fast suite.
"""

import pytest

from repro.analysis import (
    dc_fault_coverage,
    fig2_stuck_at,
    fig4_healing,
    fig5_excursion,
    fig7_detector_response,
    fig12_hysteresis,
    fig14_load_sharing,
    section65_area,
    section66_toggle_study,
    table1_delays,
)
from repro.cml import NOMINAL


class TestChainRunners:
    def test_fig2_result_fields(self):
        result = fig2_stuck_at(points_per_cycle=200, cycles=2.0)
        assert result.stuck_at_zero
        assert set(result.waves) == {"af", "abf", "opf", "opbf"}
        assert "stuck-at-0" in result.format()

    def test_fig4_result_consistency(self):
        result = fig4_healing(points_per_cycle=200, cycles=2.0)
        assert len(result.stage_names) == 8
        assert result.dut_swing_ratio > 1.5
        assert result.healed_by() is not None

    def test_table1_rows_aligned(self):
        result = table1_delays(points_per_cycle=800)
        assert len(result.taps) == 9
        for row in (result.ff_op, result.ff_opb, result.pipe_op,
                    result.pipe_opb):
            assert len(row) == 9
            assert row[0] == 0.0
        # Cumulative times increase along the chain.
        clean = [v for v in result.ff_op if v is not None]
        assert clean == sorted(clean)

    def test_fig5_reduced_sweep(self):
        result = fig5_excursion(pipe_values=(None, 1e3),
                                frequencies=(100e6, 1e9),
                                points_per_cycle=200, cycles=3.0)
        assert result.frequencies == [100e6, 1e9]
        assert result.vlow[1e3][0] < result.vlow[None][0]
        series = result.series(1e3)
        assert len(series) == 2


class TestDetectorRunners:
    def test_fig7_fields(self):
        result = fig7_detector_response(pipe_resistance=1e3,
                                        load_cap=1e-12, cycles=15)
        assert result.detected
        assert result.wave is not None
        assert result.v_min < NOMINAL.vgnd - 0.5

    def test_fig12_threshold_ordering(self):
        result = fig12_hysteresis()
        assert result.detect_threshold < result.release_threshold
        assert 0 < result.width < 0.1

    def test_fig14_small(self):
        result = fig14_load_sharing(n_values=(1, 10), faulty_pipe=None)
        assert result.faulty_vout_n1 is None
        assert result.vout[0] > result.vout[1]
        assert result.slope_per_gate > 0


class TestMethodRunners:
    def test_area_study(self):
        study = section65_area(n_gates=50)
        assert set(study.relative_overhead) == {
            "xor-observer", "variant1", "variant2", "variant3-shared",
            "variant3-dual-emitter"}

    def test_toggle_study_unknown_benchmark(self):
        with pytest.raises(KeyError):
            section66_toggle_study(benchmark_name="nonexistent")

    def test_toggle_study_runs(self):
        study = section66_toggle_study(benchmark_name="shift4",
                                       n_vectors=64)
        assert study.final_coverage == 1.0

    def test_coverage_iddq_extension(self):
        study = dc_fault_coverage(n_stages=2, kinds=("pipe",),
                                  pipe_resistances=(4e3,))
        # Every Q3 pipe both flags the detector and raises Iddq.
        q3_names = [name for name, _, verdict in study.results
                    if "Q3" in name]
        assert q3_names
        for name, _kind, verdict in study.results:
            if "Q3" in name:
                assert verdict == "detected"
                assert abs(study.iddq_deltas[name]) > 100e-6
        assert "Iddq" in study.format()

    def test_coverage_limit(self):
        study = dc_fault_coverage(n_stages=2, kinds=("pipe",),
                                  pipe_resistances=(4e3,), limit=3)
        assert len(study.results) == 3
