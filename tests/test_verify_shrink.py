"""Shrinker: minimizes while preserving the failure, rejects
unbuildable candidates, terminates."""

import pytest

from repro.verify import random_scenario, shrink
from repro.verify.generate import GeneratorConfig, build_scenario


def _big_scenario():
    config = GeneratorConfig(min_gates=4, max_gates=6, max_inputs=3,
                             max_defects=2)
    for seed in range(50):
        scenario = random_scenario(seed, config)
        if (len(scenario.gates) >= 4 and scenario.defects
                and scenario.tech_overrides
                and scenario.detector_variant):
            return scenario
    raise AssertionError("no suitably rich scenario in seed range")


def test_shrink_requires_failing_input():
    with pytest.raises(ValueError, match="failing scenario"):
        shrink(random_scenario(0), lambda s: False)


def test_shrink_to_single_gate():
    """With an always-failing predicate everything reducible goes."""
    scenario = _big_scenario()
    shrunk = shrink(scenario, lambda s: True)
    assert len(shrunk.gates) == 1
    assert not shrunk.defects
    assert shrunk.detector_variant == 0
    assert not shrunk.tech_overrides
    assert shrunk.transient is None
    assert shrunk.name.endswith("-min")


def test_shrink_preserves_predicate():
    """A predicate pinned to a property keeps that property."""
    scenario = _big_scenario()
    target = scenario.defects[0]

    def failing(candidate):
        return target in candidate.defects

    shrunk = shrink(scenario, failing)
    assert target in shrunk.defects
    assert len(shrunk.defects) == 1
    assert len(shrunk.gates) <= len(scenario.gates)


def test_shrunk_scenarios_stay_buildable():
    scenario = _big_scenario()
    shrunk = shrink(scenario, lambda s: True)
    build_scenario(shrunk)


def test_shrink_counts_build_failures_as_passing():
    """A candidate that cannot build must never be accepted — here the
    predicate crashes on scenarios without defects, and shrink treats
    the exception as 'does not fail'."""
    scenario = _big_scenario()

    def failing(candidate):
        if not candidate.defects:
            raise RuntimeError("boom")
        return True

    shrunk = shrink(scenario, failing)
    assert shrunk.defects


def test_shrink_trims_unused_inputs():
    scenario = _big_scenario()
    shrunk = shrink(scenario, lambda s: True)
    # The surviving gate consumes at most its own inputs; every
    # trailing unused input was dropped with its drive value.
    used = {name for gate in shrunk.gates for name in gate[2]}
    names = {name for name, _ in shrunk.input_values}
    assert names == {f"i{k}" for k in range(shrunk.n_inputs)}
    if f"i{shrunk.n_inputs - 1}" not in used:
        assert shrunk.n_inputs == 1  # only the irreducible floor stays
