"""Shrinker: minimizes while preserving the failure, rejects
unbuildable candidates, terminates."""

import pytest

from repro.verify import random_scenario, shrink
from repro.verify.generate import GeneratorConfig, build_scenario


def _big_scenario():
    config = GeneratorConfig(min_gates=4, max_gates=6, max_inputs=3,
                             max_defects=2)
    for seed in range(50):
        scenario = random_scenario(seed, config)
        if (len(scenario.gates) >= 4 and scenario.defects
                and scenario.tech_overrides
                and scenario.detector_variant):
            return scenario
    raise AssertionError("no suitably rich scenario in seed range")


def test_shrink_requires_failing_input():
    with pytest.raises(ValueError, match="failing scenario"):
        shrink(random_scenario(0), lambda s: False)


def test_shrink_to_single_gate():
    """With an always-failing predicate everything reducible goes."""
    scenario = _big_scenario()
    shrunk = shrink(scenario, lambda s: True)
    assert len(shrunk.gates) == 1
    assert not shrunk.defects
    assert shrunk.detector_variant == 0
    assert not shrunk.tech_overrides
    assert shrunk.transient is None
    assert shrunk.name.endswith("-min")


def test_shrink_preserves_predicate():
    """A predicate pinned to a property keeps that property."""
    scenario = _big_scenario()
    target = scenario.defects[0]

    def failing(candidate):
        return target in candidate.defects

    shrunk = shrink(scenario, failing)
    assert target in shrunk.defects
    assert len(shrunk.defects) == 1
    assert len(shrunk.gates) <= len(scenario.gates)


def test_shrunk_scenarios_stay_buildable():
    scenario = _big_scenario()
    shrunk = shrink(scenario, lambda s: True)
    build_scenario(shrunk)


def test_shrink_counts_build_failures_as_passing():
    """A candidate that cannot build must never be accepted — here the
    predicate crashes on scenarios without defects, and shrink treats
    the exception as 'does not fail'."""
    scenario = _big_scenario()

    def failing(candidate):
        if not candidate.defects:
            raise RuntimeError("boom")
        return True

    shrunk = shrink(scenario, failing)
    assert shrunk.defects


def test_shrink_trims_unused_inputs():
    scenario = _big_scenario()
    shrunk = shrink(scenario, lambda s: True)
    # The surviving gate consumes at most its own inputs; every
    # trailing unused input was dropped with its drive value.
    used = {name for gate in shrunk.gates for name in gate[2]}
    names = {name for name, _ in shrunk.input_values}
    assert names == {f"i{k}" for k in range(shrunk.n_inputs)}
    if f"i{shrunk.n_inputs - 1}" not in used:
        assert shrunk.n_inputs == 1  # only the irreducible floor stays


# ----------------------------------------------------------------------
# New defect families (oxide / interconnect) through the shrinker
# ----------------------------------------------------------------------
def _family_scenario(required=("OxideBreakdown", "WireLeak")):
    """A scenario rich in new-family structure: links plus a mix of
    catalog and extension defects (any of ``required`` qualifies)."""
    config = GeneratorConfig(
        min_gates=4, max_gates=6, max_inputs=3, max_defects=3,
        defect_kinds=("pipe", "oxide-breakdown", "wire-leak"),
        link_fraction=1.0)
    for seed in range(200):
        scenario = random_scenario(seed, config)
        kinds = {d["class"] for d in scenario.defects}
        if (scenario.links and len(scenario.gates) >= 4
                and kinds & set(required)):
            return scenario
    raise AssertionError(
        f"no link scenario with {required} in seed range")


def test_shrink_preserves_new_family_kind():
    """A disagreement pinned to an extension-family defect keeps that
    defect class while everything unrelated shrinks away."""
    scenario = _family_scenario()
    target_class = next(d["class"] for d in scenario.defects
                        if d["class"] in ("OxideBreakdown", "WireLeak"))

    def failing(candidate):
        return any(d["class"] == target_class
                   for d in candidate.defects)

    shrunk = shrink(scenario, failing)
    assert any(d["class"] == target_class for d in shrunk.defects)
    assert len(shrunk.defects) == 1
    assert len(shrunk.gates) <= 2
    build_scenario(shrunk)


def test_shrink_drops_links_when_failure_is_elsewhere():
    scenario = _family_scenario()
    target = next(d for d in scenario.defects
                  if d["class"] not in ("WireLeak",))

    def failing(candidate):
        return target in candidate.defects

    shrunk = shrink(scenario, failing)
    assert not shrunk.links
    assert target in shrunk.defects


def test_shrink_keeps_link_needed_by_wire_leak():
    """A wire-leak defect on link wires strands when its link is
    dropped; the shrinker must reject that candidate (unbuildable) and
    keep the link."""
    scenario = _family_scenario(required=("WireLeak",))
    leaks = [d for d in scenario.defects if d["class"] == "WireLeak"]

    def failing(candidate):
        build_scenario(candidate)  # raises on stranded wire defects
        return leaks[0] in candidate.defects

    shrunk = shrink(scenario, failing)
    assert leaks[0] in shrunk.defects
    assert shrunk.links, "the leaking link must survive"
    build_scenario(shrunk)
