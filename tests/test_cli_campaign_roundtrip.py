"""CLI round-trip: an interrupted checkpointed campaign resumed from
its checkpoint must produce record-identical results to an unbroken
run.  Exercises the real ``python -m repro campaign`` entry point via
subprocess, including a simulated mid-run kill (truncated checkpoint
with a torn final line)."""

import json
import os
import subprocess
import sys

import pytest

from repro.faults import load_checkpoint

REPO_SRC = os.path.join(os.path.dirname(__file__), os.pardir, "src")
TOTAL_DEFECTS = 6
PARTIAL_DEFECTS = 3


def _run_campaign(tmp_path, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    command = [sys.executable, "-m", "repro", "campaign",
               "--stages", "2", "--kinds", "pipe",
               "--pipe-resistances", "2e3", "4e3", "8e3",
               *extra]
    return subprocess.run(command, cwd=tmp_path, env=env,
                          capture_output=True, text=True, timeout=300)


def _comparable(entries):
    """Checkpoint records minus the run-specific performance fields."""
    keep = ("verdicts", "converged", "solver", "quarantined")
    return {key: {name: entry.get(name) for name in keep}
            for key, entry in entries.items()}


@pytest.fixture(scope="module")
def roundtrip(tmp_path_factory):
    """One partial run + simulated kill + resume, one unbroken run."""
    tmp_path = tmp_path_factory.mktemp("campaign_cli")
    resumed_ck = tmp_path / "resumed.jsonl"
    fresh_ck = tmp_path / "fresh.jsonl"

    partial = _run_campaign(tmp_path, "--limit", str(PARTIAL_DEFECTS),
                            "--checkpoint", str(resumed_ck))
    assert partial.returncode == 0, partial.stderr

    # Simulate dying mid-write: append a torn (truncated) JSON line.
    with open(resumed_ck, "a", encoding="utf-8") as handle:
        handle.write('{"type": "record", "schema"')

    resumed = _run_campaign(tmp_path, "--limit", str(TOTAL_DEFECTS),
                            "--checkpoint", str(resumed_ck), "--resume")
    assert resumed.returncode == 0, resumed.stderr

    fresh = _run_campaign(tmp_path, "--limit", str(TOTAL_DEFECTS),
                          "--checkpoint", str(fresh_ck))
    assert fresh.returncode == 0, fresh.stderr
    return resumed, fresh, resumed_ck, fresh_ck


def test_resume_skips_completed_defects(roundtrip):
    resumed, _, _, _ = roundtrip
    assert f"{PARTIAL_DEFECTS} resumed from checkpoint" in resumed.stdout


def test_resumed_equals_fresh_record_for_record(roundtrip):
    _, _, resumed_ck, fresh_ck = roundtrip
    resumed_entries = load_checkpoint(resumed_ck)
    fresh_entries = load_checkpoint(fresh_ck)
    assert len(resumed_entries) == TOTAL_DEFECTS
    assert sorted(resumed_entries) == sorted(fresh_entries)
    assert _comparable(resumed_entries) == _comparable(fresh_entries)


def test_torn_checkpoint_line_is_ignored(roundtrip):
    """The injected torn line must not surface as a record, and every
    surviving line must be valid JSON exactly once per defect."""
    _, _, resumed_ck, _ = roundtrip
    with open(resumed_ck, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line]
    parsed = []
    torn = 0
    for line in lines:
        try:
            parsed.append(json.loads(line))
        except json.JSONDecodeError:
            torn += 1
    assert torn == 1  # exactly the line the simulated crash tore
    keys = [e["key"] for e in parsed if e.get("type") == "record"]
    assert len(keys) == len(set(keys)) == TOTAL_DEFECTS


def test_reports_match_between_resumed_and_fresh(roundtrip):
    """The human-readable coverage table (verdict section of stdout)
    must be identical whether or not the run was interrupted."""
    resumed, fresh, _, _ = roundtrip

    def table(text):
        return [line for line in text.splitlines()
                if "|" in line or "%" in line]

    assert table(resumed.stdout) == table(fresh.stdout)
