"""Fault-tolerance tests for :func:`repro.parallel.parallel_map`.

Covers the degradation ladder: chunk salvage around a poisoned item, a
worker process crash, a hung worker caught by the liveness timeout, and
the structured :class:`MapFailure` results / monotonic progress that
callers observe through it all.  Worker functions live at module level
so the pool can pickle them.
"""

import multiprocessing
import os
import time

import pytest

from repro.parallel import MapFailure, MapTimeoutError, parallel_map

#: Every pool test uses two workers explicitly: single-core hosts (and
#: this CI) would otherwise take the serial shortcut and skip the pool.
WORKERS = 2


def _double(x):
    return 2 * x


def _poison(x):
    """Deterministic in-function error on one item."""
    if x == 3:
        raise ValueError(f"poisoned item {x}")
    return 2 * x


def _crash(x):
    """Kills the worker process outright on one item.

    In the parent process (legacy in-process rerun) it raises instead,
    so the map still terminates there.
    """
    if x == 3:
        if multiprocessing.parent_process() is not None:
            os._exit(1)
        raise RuntimeError("crash item ran in the parent")
    return 2 * x


def _hang(x):
    """Sleeps far past any liveness timeout on one item."""
    if x == 3:
        time.sleep(60.0)
    return 2 * x


class TestSerialPath:
    def test_plain_map(self):
        assert parallel_map(_double, range(5), serial=True) == \
            [0, 2, 4, 6, 8]

    def test_on_error_raise_propagates(self):
        with pytest.raises(ValueError, match="poisoned item 3"):
            parallel_map(_poison, range(5), serial=True)

    def test_on_error_return_isolates_item(self):
        results = parallel_map(_poison, range(5), serial=True,
                               on_error="return")
        assert results[:3] == [0, 2, 4] and results[4] == 8
        failure = results[3]
        assert isinstance(failure, MapFailure)
        assert failure.stage == "serial"
        assert failure.error_type == "ValueError"
        assert "poisoned item 3" in failure.error
        assert "item 3" in str(failure)

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            parallel_map(_double, range(3), on_error="ignore")


class TestPoolSalvage:
    def test_poisoned_item_costs_only_itself(self):
        results = parallel_map(_poison, range(8), workers=WORKERS,
                               chunk_size=1, on_error="return",
                               retry_backoff=0.0)
        for index in range(8):
            if index == 3:
                assert isinstance(results[index], MapFailure)
                assert results[index].stage == "serial"
            else:
                assert results[index] == 2 * index

    def test_poisoned_item_raises_deterministically(self):
        with pytest.raises(ValueError, match="poisoned item 3"):
            parallel_map(_poison, range(8), workers=WORKERS,
                         chunk_size=1, retry_backoff=0.0)

    def test_worker_crash_salvages_other_chunks(self):
        results = parallel_map(_crash, range(8), workers=WORKERS,
                               chunk_size=1, on_error="return",
                               retry_backoff=0.0)
        for index in range(8):
            if index == 3:
                assert isinstance(results[index], MapFailure)
                # Without a chunk_timeout the leftover rerun happens
                # in-process, where the crash item raises instead.
                assert results[index].stage == "serial"
                assert "parent" in results[index].error
            else:
                assert results[index] == 2 * index

    def test_worker_crash_with_timeout_confirms_crash_in_isolation(self):
        results = parallel_map(_crash, range(8), workers=WORKERS,
                               chunk_size=1, chunk_timeout=10.0,
                               on_error="return", retry_backoff=0.0)
        for index in range(8):
            if index == 3:
                assert isinstance(results[index], MapFailure)
                assert results[index].stage == "crash"
            else:
                assert results[index] == 2 * index

    def test_progress_monotonic_across_crash_fallback(self):
        calls = []
        parallel_map(_crash, range(8), workers=WORKERS, chunk_size=1,
                     on_error="return", retry_backoff=0.0,
                     progress=lambda done, total: calls.append(
                         (done, total)))
        dones = [done for done, _ in calls]
        assert dones == list(range(1, 9))
        assert {total for _, total in calls} == {8}

    def test_on_result_streams_every_slot_once(self):
        seen = {}
        parallel_map(_crash, range(8), workers=WORKERS, chunk_size=1,
                     on_error="return", retry_backoff=0.0,
                     on_result=lambda index, value:
                     seen.setdefault(index, value))
        assert sorted(seen) == list(range(8))
        assert isinstance(seen[3], MapFailure)
        assert all(seen[i] == 2 * i for i in range(8) if i != 3)


@pytest.mark.timeout(60)
class TestHungWorker:
    def test_hang_quarantined_not_rerun(self):
        started = time.perf_counter()
        results = parallel_map(_hang, range(6), workers=WORKERS,
                               chunk_size=1, chunk_timeout=1.5,
                               on_error="return", retry_backoff=0.0)
        elapsed = time.perf_counter() - started
        # The 60s sleeper must not have been rerun in the parent.
        assert elapsed < 30.0
        failure = results[3]
        assert isinstance(failure, MapFailure)
        assert failure.stage == "timeout"
        assert failure.error_type == "TimeoutError"
        for index in (0, 1, 2, 4, 5):
            assert results[index] == 2 * index

    def test_hang_raises_map_timeout(self):
        with pytest.raises(MapTimeoutError) as info:
            parallel_map(_hang, range(6), workers=WORKERS, chunk_size=1,
                         chunk_timeout=1.5, retry_backoff=0.0)
        assert any(f.index == 3 for f in info.value.failures)
