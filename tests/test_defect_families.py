"""New defect families (ISSUE 10): gate-oxide breakdown, low-swing
interconnect links, and the AND-EXOR iterative logic array.

Covers the defect models themselves (apply/delta/severity), the link
primitive's healing electrics, per-family catalog and coverage
breakouts, cold/delta/batched verdict identity, the severity-sweep
study, ILA C-testability at gate and transistor level, and the
semantics the corpus witnesses freeze (soft escape, link healing).
"""

import json
import os

import pytest

from repro.analysis import ila_c_testability_study, severity_sweep
from repro.cml import NOMINAL, buffer_chain
from repro.cml.interconnect import (
    LINK_WIRE_SUFFIX,
    attach_low_swing_link,
    link_swing,
    link_wire_pairs,
    low_swing_driver_cell,
)
from repro.faults import (
    DEFECT_CLASSES,
    DEFECT_FAMILIES,
    HARD_BREAKDOWN_RESISTANCE,
    SOFT_BREAKDOWN_RESISTANCE,
    IddqOracle,
    LogicOracle,
    OxideBreakdown,
    WireLeak,
    catalog_summary,
    enumerate_defects,
    inject,
    run_campaign,
)
from repro.sim import operating_point
from repro.testgen import (
    enumerate_stuck_faults,
    fault_simulate,
    generate_tests,
    ila_and_exor,
    ila_c_test_vectors,
)

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")


def _linked_chain(n_stages=2, swing_factor=0.5):
    chain = buffer_chain(NOMINAL, n_stages=n_stages)
    link = attach_low_swing_link(chain.circuit, *chain.output_nets[-1],
                                 swing_factor=swing_factor)
    return chain, link


# ----------------------------------------------------------------------
# Oxide breakdown
# ----------------------------------------------------------------------
class TestOxideBreakdown:
    def test_apply_adds_junction_resistor(self):
        chain = buffer_chain(NOMINAL, n_stages=1)
        faulty = inject(chain.circuit, OxideBreakdown("X1.Q1", "b", "e",
                                                      1e3))
        added = [c for c in faulty if c.name.startswith("FAULT_OXBD")]
        assert len(added) == 1
        resistor = added[0]
        device = faulty["X1.Q1"]
        assert {resistor.net("p"), resistor.net("n")} == \
            {device.net("b"), device.net("e")}
        assert resistor.resistance == 1e3

    def test_delta_matches_apply_nets(self):
        chain = buffer_chain(NOMINAL, n_stages=1)
        defect = OxideBreakdown("X1.Q2", "b", "c", 1e5)
        (net_a, net_b, g), = defect.delta_conductances(chain.circuit)
        device = chain.circuit["X1.Q2"]
        assert {net_a, net_b} == {device.net("b"), device.net("c")}
        assert g == pytest.approx(1.0 / 1e5)

    def test_severity_scale(self):
        soft = OxideBreakdown("X", resistance=SOFT_BREAKDOWN_RESISTANCE)
        hard = OxideBreakdown("X", resistance=HARD_BREAKDOWN_RESISTANCE)
        mid = OxideBreakdown("X", resistance=1e5)
        assert soft.severity == pytest.approx(0.0)
        assert hard.severity == pytest.approx(1.0)
        assert 0.0 < mid.severity < 1.0
        # Clamped outside the soft..hard span.
        assert OxideBreakdown("X", resistance=1e9).severity == 0.0
        assert OxideBreakdown("X", resistance=1.0).severity == 1.0

    def test_shared_net_rejected(self):
        chain = buffer_chain(NOMINAL, n_stages=1)
        with pytest.raises(ValueError, match="share a net"):
            OxideBreakdown("X1.Q1", "b", "b").apply(chain.circuit)

    def test_non_bjt_rejected(self):
        from repro.circuit import Resistor

        chain = buffer_chain(NOMINAL, n_stages=1)
        resistor = chain.circuit.components_of_type(Resistor)[0]
        with pytest.raises(TypeError):
            OxideBreakdown(resistor.name).apply(chain.circuit)

    def test_enumeration_scales_with_resistance_grid(self):
        chain = buffer_chain(NOMINAL, n_stages=1)
        one = list(enumerate_defects(chain.circuit,
                                     kinds=("oxide-breakdown",),
                                     oxide_resistances=(10e6,)))
        three = list(enumerate_defects(chain.circuit,
                                       kinds=("oxide-breakdown",),
                                       oxide_resistances=(1e3, 1e5,
                                                          10e6)))
        assert one and len(three) == 3 * len(one)
        assert all(d.terminal_a == "b" for d in one)


# ----------------------------------------------------------------------
# Low-swing interconnect
# ----------------------------------------------------------------------
class TestLowSwingLink:
    def test_driver_swing_factor_validated(self):
        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(ValueError):
                low_swing_driver_cell(NOMINAL, swing_factor=bad)

    def test_link_launches_reduced_swing_and_heals(self):
        chain, link = _linked_chain(swing_factor=0.5)
        solution = operating_point(chain.circuit)
        wire = link_swing(solution, link)
        healed = link_swing(solution, link, "out")
        assert wire == pytest.approx(0.5 * NOMINAL.swing, rel=0.25)
        # The receiver's differential pair restores (nearly) full swing.
        assert healed > 0.8 * NOMINAL.swing

    def test_wire_leak_erodes_wire_but_logic_heals(self):
        chain, link = _linked_chain(swing_factor=0.5)
        healthy = operating_point(chain.circuit)
        leaky = inject(chain.circuit, WireLeak(*link.wire_nets, 2e3))
        degraded = operating_point(leaky)
        assert link_swing(degraded, link) < 0.9 * link_swing(healthy,
                                                             link)
        # ... yet the received logic value survives (the healing case).
        assert link_swing(degraded, link, "out") > 0.5 * NOMINAL.swing

    def test_link_wire_pairs_and_wire_leak_sites(self):
        chain, link = _linked_chain()
        pairs = link_wire_pairs(chain.circuit)
        assert (link.wire_nets[0], link.wire_nets[1]) in pairs
        assert all(p.endswith(LINK_WIRE_SUFFIX) for p, _ in pairs)
        leaks = list(enumerate_defects(chain.circuit,
                                       kinds=("wire-leak",)))
        assert leaks and all(isinstance(d, WireLeak) for d in leaks)
        assert {(d.net_a, d.net_b) for d in leaks} >= set(pairs)

    def test_wire_leak_validates_endpoints(self):
        chain, _ = _linked_chain()
        with pytest.raises(KeyError):
            WireLeak("nosuch.lw", "nosuch.lwb").apply(chain.circuit)
        with pytest.raises(ValueError):
            WireLeak("LNK.lw", "LNK.lw").apply(chain.circuit)


# ----------------------------------------------------------------------
# Catalog and campaign per-family breakouts
# ----------------------------------------------------------------------
class TestFamilyBreakouts:
    def test_defect_families_partition_classes(self):
        assert set(DEFECT_FAMILIES) == {"catalog", "oxide",
                                        "interconnect"}
        assert sorted(c.__name__ for family in DEFECT_FAMILIES.values()
                      for c in family) == \
            sorted(c.__name__ for c in DEFECT_CLASSES)
        assert OxideBreakdown in DEFECT_FAMILIES["oxide"]
        assert WireLeak in DEFECT_FAMILIES["interconnect"]

    def test_catalog_summary_by_family(self):
        chain, _ = _linked_chain()
        flat = catalog_summary(chain.circuit)
        nested = catalog_summary(chain.circuit, by_family=True)
        assert set(nested) == {"catalog", "oxide", "interconnect"}
        assert nested["oxide"]["oxide-breakdown"] > 0
        assert nested["interconnect"]["wire-leak"] > 0
        # The nested view is a partition of the flat one.
        refolded = {kind: count for kinds in nested.values()
                    for kind, count in kinds.items()}
        assert refolded == flat

    def _mixed_campaign(self):
        chain, link = _linked_chain()
        defects = [d for kind in ("pipe", "oxide-breakdown", "wire-leak")
                   for d in list(enumerate_defects(
                       chain.circuit, kinds=(kind,),
                       oxide_resistances=(1e3,)))[:4]]
        oracles = [LogicOracle(chain.output_nets + [link.out_nets]),
                   IddqOracle(supply_source="VGND")]
        return run_campaign(chain.circuit, defects, oracles), defects

    def test_coverage_matrix_by_family(self):
        campaign, defects = self._mixed_campaign()
        by_kind = campaign.coverage_matrix()
        by_family = campaign.coverage_matrix(by="family")
        assert set(by_family) == {d.family for d in defects}
        # Totals must agree between the two groupings.
        total = sum(row["any"][1] for row in by_kind.values())
        assert sum(row["any"][1] for row in by_family.values()) == total
        with pytest.raises(ValueError):
            campaign.coverage_matrix(by="severity")

    def test_format_appends_family_table(self):
        campaign, _ = self._mixed_campaign()
        report = campaign.format()
        assert "Per-family coverage" in report
        assert "interconnect" in report


# ----------------------------------------------------------------------
# Cold / delta / batched verdict identity on the new families
# ----------------------------------------------------------------------
def test_delta_and_batched_match_cold_solves():
    chain, link = _linked_chain()
    defects = list(enumerate_defects(
        chain.circuit, kinds=("oxide-breakdown", "wire-leak"),
        oxide_resistances=(1e3, 10e6)))[:8]
    assert defects

    def verdicts(**kwargs):
        oracles = [LogicOracle(chain.output_nets + [link.out_nets]),
                   IddqOracle(supply_source="VGND")]
        result = run_campaign(chain.circuit, defects, oracles, **kwargs)
        return [(r.defect.describe(), dict(r.verdicts), r.converged)
                for r in result.records]

    cold = verdicts(warm_start=False)
    assert verdicts(delta=True) == cold
    assert verdicts(batched=True) == cold


# ----------------------------------------------------------------------
# Severity sweep study
# ----------------------------------------------------------------------
class TestSeveritySweep:
    def test_sweep_is_monotone_and_serializable(self):
        sweep = severity_sweep(resistances=(10e6, 1e3), variants=(0,),
                               n_stages=1)
        assert sweep.n_sites > 0
        assert sweep.monotone_ok()
        # Hard breakdowns must be strictly more detectable than soft.
        soft, hard = sweep.detected[0]
        assert hard >= soft
        data = sweep.to_dict()
        assert data["monotone_ok"] is True
        assert json.loads(json.dumps(data)) == data
        assert "severity sweep" in sweep.format()

    def test_sweep_rejects_unordered_grid(self):
        with pytest.raises(ValueError, match="soft"):
            severity_sweep(resistances=(1e3, 10e6), variants=(0,),
                           n_stages=1)


# ----------------------------------------------------------------------
# ILA C-testability
# ----------------------------------------------------------------------
class TestIla:
    def test_ila_logic_and_shape(self):
        network = ila_and_exor(3)
        assert len(network.primary_inputs) == 7  # y0 + 3*(a, b)
        assert len(network.primary_outputs) == 3
        vector = {"y0": False, "a0": True, "b0": True, "a1": True,
                  "b1": False, "a2": True, "b2": True}
        values = network.evaluate(vector)
        # y1 = 0 ^ (1&1) = 1; y2 = 1 ^ (1&0) = 1; y3 = 1 ^ (1&1) = 0.
        assert (values["y1"], values["y2"], values["y3"]) == \
            (True, True, False)

    @pytest.mark.parametrize("n_cells", [1, 2, 4])
    def test_c_test_set_is_constant_and_complete(self, n_cells):
        network = ila_and_exor(n_cells)
        vectors = ila_c_test_vectors(n_cells)
        assert len(vectors) == 8  # constant size at any array length
        sim = fault_simulate(network, vectors,
                             faults=enumerate_stuck_faults(network))
        assert sim.coverage == 1.0

    def test_atpg_cannot_beat_the_c_test_set(self):
        """PODEM confirms the constant set is already complete: full
        ATPG reaches the same 100% on the same fault list."""
        network = ila_and_exor(3)
        run = generate_tests(network, seed=3)
        assert run.coverage == 1.0

    def test_transistor_level_study_agrees(self):
        study = ila_c_testability_study(n_cells=2, campaign_limit=6)
        assert study.c_testable
        assert study.stuck_coverage == 1.0
        assert study.n_vectors == 8
        caught, total = study.campaign_coverage["pipe"]
        assert total > 0 and caught >= 0
        assert "C-testability" in study.format()


# ----------------------------------------------------------------------
# Witness semantics (frozen by the corpus + perf harness)
# ----------------------------------------------------------------------
class TestWitnessSemantics:
    def test_oxide_escape_witness_escapes_soft_detects_hard(self):
        from repro.verify import build_scenario, load_scenario
        from repro.verify.oracle import _fresh_oracles

        scenario = load_scenario(
            os.path.join(CORPUS_DIR, "oxide_severity_escape.json"))
        built = build_scenario(scenario)
        campaign = run_campaign(built.circuit, built.defects,
                                _fresh_oracles(built))
        by_r = {r.defect.resistance: r for r in campaign.records}
        soft, hard = by_r[max(by_r)], by_r[min(by_r)]
        assert soft.converged
        assert all(v == "pass" for v in soft.verdicts.values())
        assert (not hard.converged
                or any(v == "fail" for v in hard.verdicts.values()))

    def test_link_healing_witness_keeps_logic(self):
        from repro.verify import build_scenario, load_scenario
        from repro.verify.oracle import _fresh_oracles

        scenario = load_scenario(
            os.path.join(CORPUS_DIR, "lowswing_link_healing.json"))
        assert scenario.links
        built = build_scenario(scenario)
        campaign = run_campaign(built.circuit, built.defects,
                                _fresh_oracles(built))
        record, = campaign.records
        assert record.converged
        assert record.verdicts["logic"] == "pass"

    def test_ila_witness_preserves_input_names(self):
        from repro.verify import load_scenario

        scenario = load_scenario(
            os.path.join(CORPUS_DIR, "ila_c_testability.json"))
        assert "y0" in scenario.input_names
        network = scenario.network()
        assert set(scenario.input_names) == set(network.primary_inputs)
