"""Tests for the LTE-controlled adaptive transient stepper.

The adaptive path must stay a drop-in replacement for the fixed grid:
same physics on every library cell (within the documented millivolt
tolerance), exact landings on waveform breakpoints, and honest rejected-
step accounting through :class:`~repro.sim.dc.NewtonStats`.
"""

import numpy as np
import pytest

from repro.circuit import Circuit, VoltageSource
from repro.circuit.subcircuit import instantiate
from repro.cml import NOMINAL, VCS_NET, VGND_NET, buffer_chain
from repro.cml.cells import CELL_BUILDERS
from repro.cml.chain import differential_square
from repro.sim import transient
from repro.sim.options import SimOptions
from repro.sim.transient import _next_step, _source_breakpoints

TECH = NOMINAL


# ----------------------------------------------------------------------
# Step-size controller (pure function)
# ----------------------------------------------------------------------

def test_next_step_growth_is_clamped():
    options = SimOptions()
    h = 1e-12
    assert _next_step(h, 1e-9, options, 1e-16, 1e-9) == pytest.approx(
        h * options.step_grow_limit)


def test_next_step_shrink_is_clamped():
    options = SimOptions()
    h = 1e-12
    assert _next_step(h, 1e9, options, 1e-16, 1e-9) == pytest.approx(
        h * options.step_shrink_limit)


def test_next_step_zero_error_grows_at_the_limit():
    options = SimOptions()
    h = 1e-12
    assert _next_step(h, 0.0, options, 1e-16, 1e-9) == pytest.approx(
        h * options.step_grow_limit)


def test_next_step_moderate_error_follows_third_order_rule():
    options = SimOptions()
    h, err = 1e-12, 0.5
    expected = h * options.step_safety * err ** (-1.0 / 3.0)
    assert _next_step(h, err, options, 1e-16, 1e-9) == pytest.approx(expected)


def test_next_step_respects_hard_bounds():
    options = SimOptions()
    assert _next_step(1e-12, 1e9, options, 5e-13, 1e-9) == 5e-13
    assert _next_step(1e-9, 1e-9, options, 1e-16, 1.5e-9) == 1.5e-9


# ----------------------------------------------------------------------
# Trace accuracy
# ----------------------------------------------------------------------

def _max_trace_error(result, reference) -> float:
    """Largest node-voltage gap, measured at ``result``'s time points."""
    t = np.asarray(result.times)
    t_ref = np.asarray(reference.times)
    worst = 0.0
    for net, column in result.structure.net_index.items():
        v = result.states[:, column]
        v_ref = np.interp(t, t_ref, reference.states[:, column])
        worst = max(worst, float(np.max(np.abs(v - v_ref))))
    return worst


def _cell_transient_bench(cell, frequency: float) -> Circuit:
    """A transient testbench: rails, one toggling input, DC on the rest."""
    circuit = Circuit(f"bench_{cell.name}")
    TECH.add_supplies(circuit)
    connections = {}
    for rail in (VGND_NET, VCS_NET):
        if rail in cell.ports:
            connections[rail] = rail
    wave_p, wave_n = differential_square(TECH, frequency)
    for i, (port_p, port_n) in enumerate(cell.logic_inputs):
        shifted = port_p.endswith("l")
        high = TECH.low_level_high() if shifted else TECH.vhigh
        low = TECH.low_level_low() if shifted else TECH.vlow
        if i == 0 and not shifted:
            vp, vn = wave_p, wave_n
        else:
            vp, vn = (high, low) if i % 2 == 0 else (low, high)
        circuit.add(VoltageSource(f"V{port_p}", f"n_{port_p}", "0", vp))
        connections[port_p] = f"n_{port_p}"
        if port_n != port_p:
            circuit.add(VoltageSource(f"V{port_n}", f"n_{port_n}", "0", vn))
            connections[port_n] = f"n_{port_n}"
    for j, (out_p, out_n) in enumerate(cell.logic_outputs):
        connections[out_p] = f"out{j}_p"
        if out_n != out_p:
            connections[out_n] = f"out{j}_n"
    instantiate(circuit, cell, "U1", connections)
    return circuit


@pytest.mark.parametrize("cell_name", sorted(CELL_BUILDERS))
def test_adaptive_matches_fixed_on_every_cell(cell_name):
    """Adaptive traces agree with a 4x-finer fixed grid on each cell.

    The same-dt fixed grid is not the yardstick here: backward Euler at
    ``dt`` carries several millivolts of its own truncation error around
    the 1 GHz edges, which would dominate the comparison.
    """
    cell = CELL_BUILDERS[cell_name](TECH)
    circuit = _cell_transient_bench(cell, frequency=1e9)
    t_stop, dt = 1e-9, 2e-12
    reference = transient(circuit, t_stop, dt / 4, SimOptions())
    adaptive = transient(circuit, t_stop, dt, SimOptions(adaptive_step=True))
    assert _max_trace_error(adaptive, reference) < 1e-3


def test_adaptive_chain_accuracy_against_oversampled_reference():
    """On the benchmark chain the trace stays within 1 mV of a 4x-finer
    fixed-grid reference while using several times fewer time points."""
    chain = buffer_chain(TECH, n_stages=4, frequency=1e9)
    t_stop, dt = 2e-9, 2e-12
    adaptive = transient(chain.circuit, t_stop, dt,
                         SimOptions(adaptive_step=True))
    reference = transient(chain.circuit, t_stop, dt / 4, SimOptions())
    fixed = transient(chain.circuit, t_stop, dt, SimOptions())
    assert _max_trace_error(adaptive, reference) < 1e-3
    assert len(adaptive.times) < len(fixed.times) / 2


# ----------------------------------------------------------------------
# Controller behaviour
# ----------------------------------------------------------------------

def test_adaptive_lands_exactly_on_source_breakpoints():
    chain = buffer_chain(TECH, n_stages=2, frequency=1e9)
    t_stop, dt = 2e-9, 2e-12
    result = transient(chain.circuit, t_stop, dt,
                       SimOptions(adaptive_step=True))
    times = set(float(t) for t in result.times)
    breakpoints = _source_breakpoints(chain.circuit, t_stop)
    assert breakpoints, "bench stimulus should have waveform corners"
    for bp in breakpoints:
        assert bp in times
    assert float(result.times[0]) == 0.0
    assert float(result.times[-1]) == t_stop


def test_tight_tolerance_rejects_and_retries_steps():
    """An aggressive LTE tolerance must reject steps (and still finish)."""
    chain = buffer_chain(TECH, n_stages=2, frequency=1e9)
    loose = transient(chain.circuit, 1e-9, 2e-12,
                      SimOptions(adaptive_step=True))
    tight = transient(chain.circuit, 1e-9, 2e-12,
                      SimOptions(adaptive_step=True, lte_reltol=1e-6,
                                 lte_abstol=1e-7))
    assert tight.stats.n_rejected_steps > 0
    assert len(tight.times) > len(loose.times)


def test_fixed_grid_reports_no_rejected_steps():
    chain = buffer_chain(TECH, n_stages=2, frequency=1e9)
    result = transient(chain.circuit, 1e-9, 2e-12, SimOptions())
    assert result.stats.n_rejected_steps == 0
    assert result.stats.n_factorizations > 0
