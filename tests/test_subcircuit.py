"""SubCircuit flattening: prefixing, port mapping, nesting, errors."""

import pytest

from repro.circuit.components import Resistor, VoltageSource
from repro.circuit.netlist import Circuit
from repro.circuit.subcircuit import (
    GLOBAL_NETS,
    CellInstance,
    SubCircuit,
    instantiate,
)
from repro.sim import SimOptions, operating_point


def _divider_cell() -> SubCircuit:
    """Two-resistor divider: in -> mid -> out, mid is internal."""
    cell = SubCircuit("divider", ports=["in", "out"])
    cell.circuit.add(Resistor("R1", "in", "mid", 1e3))
    cell.circuit.add(Resistor("R2", "mid", "out", 1e3))
    return cell


def test_flattening_prefixes_names_and_internal_nets():
    parent = Circuit()
    added = _divider_cell().instantiate(parent, "X1",
                                        {"in": "a", "out": "b"})
    assert [c.name for c in added] == ["X1.R1", "X1.R2"]
    assert parent["X1.R1"].net("p") == "a"
    assert parent["X1.R1"].net("n") == "X1.mid"
    assert parent["X1.R2"].net("n") == "b"


def test_template_is_not_mutated_by_instantiation():
    cell = _divider_cell()
    parent = Circuit()
    cell.instantiate(parent, "X1", {"in": "a", "out": "b"})
    cell.instantiate(parent, "X2", {"in": "b", "out": "0"})
    assert cell.circuit["R1"].net("p") == "in"
    assert cell.circuit["R1"].net("n") == "mid"
    assert {"X1.mid", "X2.mid"} <= set(parent.nets())


def test_global_nets_pass_through_unprefixed():
    cell = SubCircuit("pulldown", ports=["in"])
    cell.circuit.add(Resistor("R1", "in", "0", 1e3))
    parent = Circuit()
    cell.instantiate(parent, "X1", {"in": "a"})
    assert parent["X1.R1"].net("n") == "0"
    assert "0" in GLOBAL_NETS
    cell_g = SubCircuit("railed", ports=["in"], globals_=["vdd"])
    cell_g.circuit.add(Resistor("R1", "in", "vdd", 1e3))
    cell_g.instantiate(parent, "X2", {"in": "a"})
    assert parent["X2.R1"].net("n") == "vdd"


def test_internal_nets_listing():
    cell = _divider_cell()
    assert cell.internal_nets() == ["mid"]


def test_nested_subcircuits_flatten_with_compound_prefixes():
    """A cell built from instances of another cell: flattening the
    outer cell re-prefixes the already-prefixed inner names."""
    inner = _divider_cell()
    outer = SubCircuit("chain", ports=["in", "out"])
    inner.instantiate(outer.circuit, "A", {"in": "in", "out": "link"})
    inner.instantiate(outer.circuit, "B", {"in": "link", "out": "out"})

    parent = Circuit()
    parent.add(VoltageSource("V1", "top_in", "0", 2.0))
    parent.add(Resistor("RL", "top_out", "0", 1e3))
    cells = outer.instantiate(parent, "U1",
                              {"in": "top_in", "out": "top_out"})
    assert {c.name for c in cells} == {
        "U1.A.R1", "U1.A.R2", "U1.B.R1", "U1.B.R2"}
    # The inner link net and the two mids are internal at every level.
    assert {"U1.link", "U1.A.mid", "U1.B.mid"} <= set(parent.nets())
    # The flattened composition solves: 4 x 1k in series off 2 V.
    solution = operating_point(parent, SimOptions())
    assert solution.voltage("U1.link") == pytest.approx(1.2, abs=1e-6)
    assert solution.voltage("top_out") == pytest.approx(0.4, abs=1e-6)


def test_name_collision_between_instances_raises():
    parent = Circuit()
    cell = _divider_cell()
    cell.instantiate(parent, "X1", {"in": "a", "out": "b"})
    with pytest.raises(ValueError, match="duplicate component name"):
        cell.instantiate(parent, "X1", {"in": "c", "out": "d"})


def test_duplicate_port_names_rejected():
    with pytest.raises(ValueError, match="duplicate port names"):
        SubCircuit("bad", ports=["a", "a"])


def test_unconnected_ports_rejected():
    with pytest.raises(ValueError, match="unconnected ports"):
        _divider_cell().instantiate(Circuit(), "X1", {"in": "a"})


def test_unknown_ports_rejected():
    with pytest.raises(ValueError, match="unknown ports"):
        _divider_cell().instantiate(
            Circuit(), "X1", {"in": "a", "out": "b", "bogus": "c"})


def test_cell_instance_accessors():
    parent = Circuit()
    record = instantiate(parent, _divider_cell(), "DUT",
                         {"in": "a", "out": "b"})
    assert isinstance(record, CellInstance)
    assert record.port("in") == "a"
    assert record.component("R2").name == "DUT.R2"
    with pytest.raises(KeyError, match="no port"):
        record.port("nope")
    with pytest.raises(KeyError, match="no component"):
        record.component("R9")
