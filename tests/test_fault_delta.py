"""Tests for the low-rank (Woodbury / replay) fault-delta solver.

The delta path solves added-conductance defects on a shared fault-free
compiled system, skipping per-defect injection and compilation.  Its
contract is strict: the dense replay solver reproduces the conventional
inject-and-solve trajectory *bit for bit*, campaign verdicts are
identical to the warm-started campaign's, opens fall back to the full
solver, and serial/parallel runs return the same records.
"""

import numpy as np
import pytest

from repro.cml import NOMINAL, buffer_chain
from repro.dft import build_shared_monitor
from repro.faults import (
    Bridge,
    FlagOracle,
    IddqOracle,
    LogicOracle,
    Pipe,
    enumerate_defects,
    run_campaign,
)
from repro.faults.campaign import _warm_start_vector
from repro.faults.defects import ResistorShort
from repro.faults.injector import inject
from repro.sim.dc import DeltaContext, NewtonStats, delta_solve, operating_point
from repro.sim.mna import structure_for
from repro.sim.options import SimOptions

TECH = NOMINAL


@pytest.fixture(scope="module")
def bench():
    chain = buffer_chain(TECH, n_stages=3, frequency=100e6)
    monitor = build_shared_monitor(chain.circuit, chain.output_nets,
                                   tech=TECH)
    oracles = [
        LogicOracle(chain.output_nets),
        FlagOracle(monitor.nets.flag, monitor.nets.flagb),
        IddqOracle(),
    ]
    defects = list(enumerate_defects(
        chain.circuit,
        kinds=("pipe", "terminal-short", "resistor-short", "resistor-open"),
        pipe_resistances=(2e3, 4e3)))
    return chain.circuit, defects, oracles


def _full_solution(circuit, defect, options, reference):
    warm = (reference.voltages(),
            {name: reference.branch_current(name)
             for name in reference.structure.branch_index})
    faulty = inject(circuit, defect)
    initial = _warm_start_vector(structure_for(faulty), *warm)
    return operating_point(faulty, options, initial=initial).x


def test_delta_solutions_bitwise_match_full_path(bench):
    """Every low-rank defect's delta solve equals the conventional
    inject-and-solve solution exactly (not within tolerance: bitwise)."""
    circuit, defects, _ = bench
    options = SimOptions()
    reference = operating_point(circuit, options)
    context = DeltaContext.build(circuit, options, reference.x)
    checked = 0
    for defect in defects:
        deltas = defect.delta_conductances(circuit)
        if deltas is None:
            continue
        pairs = [(context.structure.index(p), context.structure.index(n))
                 for p, n, _ in deltas]
        conductances = [g for _, _, g in deltas]
        x_delta = delta_solve(context, pairs, conductances, options,
                              NewtonStats())
        x_full = _full_solution(circuit, defect, options, reference)
        assert np.array_equal(x_delta, x_full), defect.describe()
        checked += 1
    assert checked > 100  # the catalog is dominated by low-rank defects


def test_woodbury_chord_matches_full_path_closely(bench):
    """With reuse forced on, mild faults go through the Woodbury chord
    and land close to the full solution.

    The chord's gate is the KCL residual (amps), not voltage: on a node
    held only by gmin-scale conductance a 1e-12 A residual still allows
    tens of microvolts of slack, so the bound here is 1e-4 V rather
    than solver tolerance.
    """
    circuit, _, _ = bench
    options = SimOptions(newton_reuse="always", delta_residual_tol=1e-12)
    reference = operating_point(circuit, SimOptions())
    context = DeltaContext.build(circuit, options, reference.x)
    for defect in (Pipe("X1.Q3", 4e3), Pipe("X2.Q3", 2e3),
                   ResistorShort("X1.R1")):
        deltas = defect.delta_conductances(circuit)
        pairs = [(context.structure.index(p), context.structure.index(n))
                 for p, n, _ in deltas]
        conductances = [g for _, _, g in deltas]
        stats = NewtonStats()
        x_delta = delta_solve(context, pairs, conductances, options, stats)
        x_full = _full_solution(circuit, defect, SimOptions(), reference)
        assert np.max(np.abs(x_delta - x_full)) < 1e-4, defect.describe()
        assert stats.n_reuses > 0, "chord iterations should reuse the LU"


def test_delta_campaign_verdicts_identical_to_warm(bench):
    circuit, defects, oracles = bench
    warm = run_campaign(circuit, defects, oracles)
    delta = run_campaign(circuit, defects, oracles, delta=True)
    for w, d in zip(warm.records, delta.records):
        assert w.verdicts == d.verdicts, d.defect.describe()
        assert w.converged == d.converged, d.defect.describe()
    counts = delta.solver_counts()
    assert counts.get("delta", 0) > len(defects) // 2
    assert delta.woodbury_fallbacks == 0
    assert delta.coverage_matrix() == warm.coverage_matrix()


def test_opens_fall_back_to_the_full_solver(bench):
    """Topology-changing defects carry no low-rank view: solver='full'."""
    circuit, defects, oracles = bench
    delta = run_campaign(circuit, defects, oracles, delta=True)
    open_records = [r for r in delta.records
                    if r.defect.kind in ("open", "resistor-open")]
    assert open_records
    for record in open_records:
        assert record.solver == "full"
    low_rank = [r for r in delta.records
                if r.defect.kind in ("pipe", "terminal-short",
                                     "resistor-short")]
    assert all(r.solver in ("delta", "delta-fallback") for r in low_rank)


def test_parallel_delta_campaign_identical_to_serial(bench):
    circuit, defects, oracles = bench
    serial = run_campaign(circuit, defects, oracles, delta=True)
    parallel = run_campaign(circuit, defects, oracles, delta=True,
                            parallel=True, workers=2)
    assert parallel.records == serial.records


def test_delta_conductances_values_and_validation(bench):
    circuit, _, _ = bench
    # A resistor short is a single conductance across the element.
    resistor = circuit["X1.R1"]
    [(p, n, g)] = ResistorShort("X1.R1").delta_conductances(circuit)
    assert (p, n) == (resistor.net("p"), resistor.net("n"))
    assert g == 1.0 / ResistorShort("X1.R1").resistance
    # A pipe spans collector to emitter with 1/R.
    [(p, n, g)] = Pipe("X1.Q3", 4e3).delta_conductances(circuit)
    device = circuit["X1.Q3"]
    assert (p, n) == (device.net("c"), device.net("e"))
    assert g == pytest.approx(1.0 / 4e3)
    # Validation mirrors apply(): wrong component types and degenerate
    # shorts raise the same errors without mutating anything.
    with pytest.raises(TypeError):
        Pipe("X1.R1").delta_conductances(circuit)
    with pytest.raises(TypeError):
        ResistorShort("X1.Q3").delta_conductances(circuit)
    with pytest.raises(KeyError):
        Bridge("no_such_net", "0").delta_conductances(circuit)
    with pytest.raises(ValueError):
        Bridge("op1", "op1").delta_conductances(circuit)


def test_delta_records_surface_solver_counters(bench):
    circuit, defects, oracles = bench
    delta = run_campaign(circuit, defects, oracles, delta=True)
    solved = [r for r in delta.records if r.solver == "delta"]
    assert solved
    assert all(r.newton_iterations > 0 for r in solved)
    assert sum(r.n_factorizations for r in solved) > 0
