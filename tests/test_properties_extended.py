"""Second property-test batch: the newer subsystems.

MISR linearity over GF(2), SPICE round-trips on randomly generated
circuits, logic-simulator forcing semantics, diagnosis consistency and
waveform CSV persistence.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.circuit import (
    Bjt,
    Capacitor,
    Circuit,
    Diode,
    Resistor,
    VoltageSource,
    from_spice,
    to_spice,
)
from repro.sim import operating_point
from repro.sim.waveform import Waveform
from repro.testgen import Misr, full_adder

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# MISR linearity
# ----------------------------------------------------------------------
bit_streams = st.lists(
    st.lists(st.booleans(), min_size=4, max_size=4),
    min_size=1, max_size=30)


class TestMisrProperties:
    @given(bit_streams, bit_streams)
    @settings(max_examples=50, **COMMON)
    def test_gf2_linearity(self, stream_a, stream_b):
        """The MISR is linear over GF(2): sig(a XOR b) = sig(a) XOR
        sig(b) for equal-length streams from the zero state."""
        length = min(len(stream_a), len(stream_b))
        stream_a, stream_b = stream_a[:length], stream_b[:length]
        xored = [[x != y for x, y in zip(wa, wb)]
                 for wa, wb in zip(stream_a, stream_b)]

        def signature(stream):
            misr = Misr(16, seed=0)
            for word in stream:
                misr.clock(word)
            return misr.signature

        assert signature(xored) == signature(stream_a) ^ signature(stream_b)

    @given(bit_streams)
    @settings(max_examples=30, **COMMON)
    def test_zero_stream_keeps_zero_state(self, stream):
        misr = Misr(16, seed=0)
        for word in stream:
            misr.clock([False] * len(word))
        assert misr.signature == 0

    @given(st.integers(min_value=0, max_value=(1 << 16) - 1), bit_streams)
    @settings(max_examples=30, **COMMON)
    def test_cycle_count_tracks(self, seed, stream):
        misr = Misr(16, seed=seed)
        for word in stream:
            misr.clock(word)
        assert misr.cycles == len(stream)


# ----------------------------------------------------------------------
# SPICE round trip on random circuits
# ----------------------------------------------------------------------
@st.composite
def random_circuits(draw):
    """A random connected R/diode/BJT network driven by one source."""
    circuit = Circuit("prop")
    vsrc = draw(st.floats(min_value=0.5, max_value=5.0))
    circuit.add(VoltageSource("V1", "n0", "0", vsrc))
    n_nodes = draw(st.integers(min_value=1, max_value=5))
    for i in range(n_nodes):
        r = draw(st.floats(min_value=100.0, max_value=100e3))
        circuit.add(Resistor(f"R{i}", f"n{i}", f"n{i + 1}", r))
    circuit.add(Resistor("Rend", f"n{n_nodes}", "0", 1000.0))
    if draw(st.booleans()):
        circuit.add(Diode("D1", f"n{n_nodes}", "0", isat=1e-15))
    if draw(st.booleans()):
        circuit.add(Bjt("Q1", "n0", f"n{min(1, n_nodes)}", "0",
                        isat=1e-16))
    if draw(st.booleans()):
        circuit.add(Capacitor("C1", f"n{n_nodes}", "0", 1e-12))
    return circuit


class TestSpiceRoundTripProperties:
    @given(random_circuits())
    @settings(max_examples=25, **COMMON)
    def test_roundtrip_preserves_operating_point(self, circuit):
        parsed = from_spice(to_spice(circuit))
        op_original = operating_point(circuit)
        op_parsed = operating_point(parsed)
        for net in circuit.unknown_nets():
            assert op_parsed.voltage(net) == pytest.approx(
                op_original.voltage(net), abs=1e-5)

    @given(random_circuits())
    @settings(max_examples=25, **COMMON)
    def test_roundtrip_preserves_component_count(self, circuit):
        parsed = from_spice(to_spice(circuit))
        assert len(parsed) == len(circuit)


# ----------------------------------------------------------------------
# Logic forcing semantics
# ----------------------------------------------------------------------
class TestForcingProperties:
    @given(st.tuples(st.booleans(), st.booleans(), st.booleans()),
           st.sampled_from(["axb", "ab", "cx", "sum", "cout"]),
           st.booleans())
    @settings(max_examples=60, **COMMON)
    def test_forced_net_reads_forced_value(self, bits, net, value):
        network = full_adder()
        vector = dict(zip(("a", "b", "cin"), bits))
        values = network.evaluate(vector, forces={net: value})
        assert values[net] is value

    @given(st.tuples(st.booleans(), st.booleans(), st.booleans()))
    @settings(max_examples=30, **COMMON)
    def test_empty_forces_is_identity(self, bits):
        network = full_adder()
        vector = dict(zip(("a", "b", "cin"), bits))
        assert network.evaluate(vector, forces={}) == network.evaluate(
            vector)

    @given(st.tuples(st.booleans(), st.booleans(), st.booleans()),
           st.booleans())
    @settings(max_examples=30, **COMMON)
    def test_force_propagates_downstream(self, bits, value):
        """Forcing axb must drive sum as if axb were an input."""
        network = full_adder()
        vector = dict(zip(("a", "b", "cin"), bits))
        values = network.evaluate(vector, forces={"axb": value})
        assert values["sum"] == (value != bits[2])


# ----------------------------------------------------------------------
# Waveform CSV persistence
# ----------------------------------------------------------------------
class TestCsvProperties:
    @given(st.lists(st.floats(min_value=-10, max_value=10,
                              allow_nan=False),
                    min_size=3, max_size=40))
    @settings(max_examples=30, **COMMON)
    def test_roundtrip_exact(self, values):
        import tempfile
        import os

        times = np.linspace(0, 1e-9, len(values))
        wave = Waveform(times, np.array(values), name="w")

        from repro.sim.report import load_waveforms_csv

        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "w.csv")
            with open(path, "w", newline="") as handle:
                import csv as csv_module

                writer = csv_module.writer(handle)
                writer.writerow(["time_s", "w"])
                for t, v in zip(wave.times, wave.values):
                    writer.writerow([repr(float(t)), repr(float(v))])
            loaded = load_waveforms_csv(path)["w"]
        assert np.array_equal(loaded.values, wave.values)
        assert np.array_equal(loaded.times, wave.times)
