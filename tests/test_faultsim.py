"""Tests for the gate-level stuck-at fault simulator."""

import pytest

from repro.testgen import (
    StuckFault,
    enumerate_stuck_faults,
    exhaustive_vectors,
    fault_simulate,
    full_adder,
    mux_select_tree,
    observability_gain,
    random_vectors,
    shift_register,
)


class TestEnumeration:
    def test_two_polarities_per_net(self):
        network = full_adder()
        faults = enumerate_stuck_faults(network)
        assert len(faults) == 2 * len(network.signals())

    def test_exclude_inputs(self):
        network = full_adder()
        faults = enumerate_stuck_faults(network, include_inputs=False)
        assert len(faults) == 2 * len(network.gates)
        assert all(f.net not in network.primary_inputs for f in faults)

    def test_describe(self):
        assert StuckFault("sum", True).describe() == "sum stuck-at-1"


class TestFaultSimulation:
    def test_exhaustive_full_adder_full_coverage(self):
        network = full_adder()
        vectors = list(exhaustive_vectors(network.primary_inputs))
        result = fault_simulate(network, vectors)
        assert result.coverage == 1.0
        assert result.undetected == []

    def test_single_vector_partial_coverage(self):
        network = full_adder()
        result = fault_simulate(network,
                                [{"a": False, "b": False, "cin": False}])
        assert 0.0 < result.coverage < 1.0
        # A stuck-at equal to the applied value is undetectable by it.
        assert StuckFault("a", False) in result.undetected

    def test_specific_fault_detection(self):
        network = full_adder()
        vectors = list(exhaustive_vectors(network.primary_inputs))
        result = fault_simulate(network, vectors,
                                faults=[StuckFault("axb", True)])
        assert result.detected == [StuckFault("axb", True)]

    def test_sequential_faults(self):
        network = shift_register(3)
        vectors = random_vectors(["sin"], 32, seed=7)
        result = fault_simulate(network, vectors)
        assert result.coverage == 1.0

    def test_format(self):
        network = full_adder()
        result = fault_simulate(network,
                                [{"a": True, "b": True, "cin": True}])
        text = result.format()
        assert "coverage" in text

    def test_no_outputs_rejected(self):
        from repro.testgen import LogicNetwork

        network = LogicNetwork()
        network.add_input("a")
        network.add_gate("G", "buffer", ["a"], "x")
        with pytest.raises(ValueError):
            fault_simulate(network, [{"a": True}])


class TestObservabilityGain:
    def test_all_gate_observation_never_worse(self):
        for build, seed in ((full_adder, 1), (mux_select_tree, 2)):
            network = build()
            vectors = random_vectors(network.primary_inputs, 4, seed=seed)
            outputs_only, all_gates = observability_gain(network, vectors)
            assert all_gates >= outputs_only

    def test_blocked_path_shows_gain(self):
        """Internal observation (the paper's per-gate detectors) catches
        faults on paths the output never selects: with s1 pinned low the
        d2/d3 mux branch is invisible at `out` but its gate output still
        toggles under the detectors — the architectural payoff of
        testing at all gate outputs."""
        network = mux_select_tree()
        vectors = [
            {"d0": a, "d1": b, "d2": c, "d3": d, "s0": s, "s1": False}
            for a, b, c, d, s in [(False, True, False, True, False),
                                  (True, False, True, False, False),
                                  (False, False, True, True, True),
                                  (True, True, False, False, True)]]
        outputs_only, all_gates = observability_gain(network, vectors)
        assert all_gates > outputs_only

    def test_exhaustive_closes_gap_on_small_blocks(self):
        network = full_adder()
        vectors = list(exhaustive_vectors(network.primary_inputs))
        outputs_only, all_gates = observability_gain(network, vectors)
        assert outputs_only == all_gates == 1.0
