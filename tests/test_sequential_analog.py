"""Transistor-level integration of the sequential testing flow (§6.6).

Synthesizes a shift register onto CML flip-flops, clocks it with a real
differential clock, instruments every gate output with the shared
variant-3 monitor and verifies that (a) the logic still shifts, (b) the
monitor passes fault-free, and (c) a pipe inside a flip-flop's latch is
flagged — the complete paper methodology on a sequential design.
"""

import pytest

from repro.circuit import Prbs, Pulse, VoltageSource
from repro.cml import NOMINAL
from repro.dft import instrument_pairs
from repro.faults import Pipe, inject
from repro.sim import operating_point, transient
from repro.testgen import shift_register, synthesize

TECH = NOMINAL
CLOCK_FREQUENCY = 100e6


@pytest.fixture(scope="module")
def testbench():
    """Synthesized 2-stage shift register with clock + data sources."""
    network = shift_register(2)
    design = synthesize(network, TECH)
    circuit = design.circuit
    clk_p, clk_n = design.clock_nets
    circuit.add(VoltageSource("VCLK", clk_p, "0",
                              Pulse.square(TECH.vlow, TECH.vhigh,
                                           CLOCK_FREQUENCY)))
    circuit.add(VoltageSource("VCLKB", clk_n, "0",
                              Pulse.square(TECH.vhigh, TECH.vlow,
                                           CLOCK_FREQUENCY)))
    sin_p, sin_n = design.pair("sin")
    bit_period = 2.0 / CLOCK_FREQUENCY
    circuit.add(VoltageSource("VSIN", sin_p, "0",
                              Prbs(TECH.vlow, TECH.vhigh, bit_period,
                                   order=7, seed=5)))
    circuit.add(VoltageSource("VSINB", sin_n, "0",
                              Prbs(TECH.vhigh, TECH.vlow, bit_period,
                                   order=7, seed=5)))
    monitors = instrument_pairs(circuit, design.gate_output_pairs(), TECH)
    return design, monitors


class TestSequentialAnalogFlow:
    def test_structure(self, testbench):
        design, monitors = testbench
        assert monitors.n_monitored_gates == 2
        # 2 DFFs x 14 transistors + clock shifters + monitor.
        from repro.circuit.devices import Bjt
        n_bjt = len(design.circuit.components_of_type(Bjt))
        assert n_bjt > 30

    def test_fault_free_monitor_passes_dc(self, testbench):
        design, monitors = testbench
        op = operating_point(design.circuit)
        flag, flagb = monitors.flag_nets()[0]
        assert op.voltage(flag) > op.voltage(flagb)

    def test_register_shifts_under_clock(self, testbench):
        design, _ = testbench
        result = transient(design.circuit, t_stop=80e-9, dt=100e-12)
        q0 = result.differential(*design.pair("q0")).window(20e-9, 80e-9)
        q1 = result.differential(*design.pair("q1")).window(20e-9, 80e-9)
        # Data propagates: both flop outputs toggle with full CML swing.
        assert q0.extreme_swing() > 1.2 * TECH.swing
        assert q1.extreme_swing() > 1.2 * TECH.swing
        # q1 edges lag q0 edges by one clock period.
        q0_edges = q0.crossings(0.0, "rise")
        q1_edges = q1.crossings(0.0, "rise")
        assert q0_edges and q1_edges
        lag = q1_edges[0] - q0_edges[0]
        period = 1.0 / CLOCK_FREQUENCY
        assert lag == pytest.approx(period, abs=0.3 * period)

    def test_pipe_in_slave_detected_while_clocking(self, testbench):
        """A DC operating point can park a latch on its metastable
        balanced solution where the excess swing is hidden — the paper's
        §6.6 point that sequential faults must be *asserted by toggling*.
        Under a running clock the faulty latch decides, its low level
        collapses, and the monitor flag falls."""
        design, monitors = testbench
        faulty = inject(design.circuit, Pipe("F1.S.Q3", 4e3))
        result = transient(faulty, t_stop=50e-9, dt=100e-12)
        flag, flagb = monitors.flag_nets()[0]
        flag_diff = result.wave(flag) - result.wave(flagb)
        assert flag_diff.window(30e-9, 50e-9).maximum() < 0

    def test_master_pipe_escapes_output_only_monitoring(self, testbench):
        """Healing strikes *inside* the flip-flop: the slave latch
        regenerates the master's doubled swing, so a monitor watching
        only the flop outputs misses the master pipe.  This is why the
        paper implements detectors "at the output of each gate", not
        just at register boundaries."""
        design, monitors = testbench
        faulty = inject(design.circuit, Pipe("F0.M.Q3", 4e3))
        result = transient(faulty, t_stop=50e-9, dt=100e-12)
        # The master's internal low level collapses...
        internal = result.wave("F0.mq").window(20e-9, 50e-9)
        assert internal.minimum() < TECH.vlow - 0.1
        # ...the monitored slave output has healed...
        q0 = result.wave(design.pair("q0")[0]).window(20e-9, 50e-9)
        assert q0.minimum() > TECH.vlow - 0.05
        # ...and the output-only monitor stays green (the escape).
        flag, flagb = monitors.flag_nets()[0]
        flag_diff = result.wave(flag) - result.wave(flagb)
        assert flag_diff.window(30e-9, 50e-9).minimum() > 0

    def test_master_pipe_caught_with_internal_detectors(self, testbench):
        """Per-gate insertion closes the escape: adding the latch-internal
        output pair to the monitored set flags the master pipe."""
        design, _ = testbench
        circuit = design.circuit.copy()
        internal_monitor = instrument_pairs(
            circuit, [("F0.mq", "F0.mqb"), ("F1.mq", "F1.mqb")], TECH,
            name_prefix="IMON")
        faulty = inject(circuit, Pipe("F0.M.Q3", 4e3))
        result = transient(faulty, t_stop=50e-9, dt=100e-12)
        flag, flagb = internal_monitor.flag_nets()[0]
        flag_diff = result.wave(flag) - result.wave(flagb)
        assert flag_diff.window(30e-9, 50e-9).minimum() < 0

    def test_logic_unharmed_by_monitoring(self, testbench):
        """The monitors must not load the flops into malfunction: the
        shift still works with every detector attached (non-intrusive)."""
        design, _ = testbench
        result = transient(design.circuit, t_stop=60e-9, dt=100e-12)
        q1_levels = result.wave(design.pair("q1")[0]).window(
            30e-9, 60e-9).levels()
        assert q1_levels[1] - q1_levels[0] > 0.8 * TECH.swing
