"""The PODEM engine, pinned against exhaustive ground truth.

Small networks (few enough inputs to enumerate) are the oracle here:
bit-parallel fault simulation over all 2^n vectors says exactly which
stuck-at faults are detectable, and the engine's verdicts must agree —
detections must come with a cube that really detects, untestability
proofs must never contradict an exhaustive detection, and the
end-to-end :func:`generate_tests` flow must classify every fault.
"""

import random

import pytest

from repro.telemetry import Telemetry
from repro.testgen import (enumerate_stuck_faults, exhaustive_vectors,
                           fault_detect_matrix, generate_tests,
                           iscas_like, random_network,
                           sequential_decider, sequential_test_plan,
                           shift_register, unroll)
from repro.testgen.atpg import (ABORTED, DETECTED, UNTESTABLE,
                                PodemEngine)

SWEEP_SEEDS = range(8)


def _sweep_network(seed):
    rng = random.Random(seed)
    return random_network(rng, n_gates=rng.randint(6, 16),
                          n_inputs=rng.randint(3, 8),
                          name=f"sweep{seed}")


def _ground_truth(network):
    """Exhaustively detectable faults (primary-output observation)."""
    vectors = list(exhaustive_vectors(network.primary_inputs))
    masks = fault_detect_matrix(network, vectors)
    return {fault for fault, mask in masks.items() if mask}


class TestPodemVsExhaustive:
    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_verdicts_agree_with_enumeration(self, seed):
        network = _sweep_network(seed)
        detectable = _ground_truth(network)
        engine = PodemEngine(network)
        for fault in enumerate_stuck_faults(network):
            result = engine.detect(fault)
            if result.status == DETECTED:
                assert fault in detectable, \
                    f"false detection claim for {fault.describe()}"
                # The returned cube (X inputs filled either way) must
                # really detect the fault.
                filled = {pi: result.vector.get(pi, False)
                          for pi in network.primary_inputs}
                assert fault_detect_matrix(network, [filled],
                                           faults=[fault])[fault], \
                    f"cube does not detect {fault.describe()}"
            elif result.status == UNTESTABLE:
                assert fault not in detectable, \
                    f"false untestability proof for {fault.describe()}"
            else:
                assert result.status == ABORTED

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_generate_tests_classifies_every_fault(self, seed):
        network = _sweep_network(seed)
        detectable = _ground_truth(network)
        run = generate_tests(network, seed=seed)
        assert set(run.confirmed) == detectable
        assert not run.missed, [f.describe() for f in run.missed]
        assert set(run.proven_untestable) == (
            set(enumerate_stuck_faults(network)) - detectable)
        assert run.coverage == 1.0
        assert run.efficiency == 1.0

    @pytest.mark.parametrize("seed", SWEEP_SEEDS)
    def test_compacted_vectors_still_confirmed_bit_parallel(self, seed):
        """run.confirmed is exactly what the final vector set detects."""
        network = _sweep_network(seed)
        run = generate_tests(network, seed=seed)
        masks = fault_detect_matrix(network, run.vectors)
        assert set(run.confirmed) == {f for f, m in masks.items() if m}


class TestEngineDiscipline:
    def test_backtrack_budget_is_respected(self):
        network = _sweep_network(3)
        engine = PodemEngine(network, backtrack_limit=1)
        for fault in enumerate_stuck_faults(network):
            result = engine.detect(fault)
            assert result.backtracks <= 1
            assert result.status in (DETECTED, UNTESTABLE, ABORTED)

    def test_zero_budget_never_claims_untestable_wrongly(self):
        network = _sweep_network(5)
        detectable = _ground_truth(network)
        engine = PodemEngine(network, backtrack_limit=0)
        for fault in enumerate_stuck_faults(network):
            result = engine.detect(fault)
            if result.status == UNTESTABLE:
                assert fault not in detectable

    def test_sequential_network_rejected(self):
        with pytest.raises(ValueError, match="sequential"):
            generate_tests(shift_register(2))

    def test_no_enumeration_on_wide_networks(self):
        """A 24-input network completes with a vector budget and PODEM
        call count nowhere near 2^24."""
        network = iscas_like(7, n_gates=120, n_inputs=24)
        run = generate_tests(network)
        assert run.stats.podem_calls <= run.n_collapsed
        assert len(run.vectors) + len(run.results) < 2 ** 12
        assert run.coverage > 0.9

    def test_counters_reach_telemetry(self):
        telemetry = Telemetry.capturing()
        network = _sweep_network(1)
        run = generate_tests(network, telemetry=telemetry)
        metrics = telemetry.metrics
        assert metrics.counter_value("atpg.podem_calls") == \
            run.stats.podem_calls
        assert metrics.counter_value("atpg.detected") == \
            run.stats.detected
        assert metrics.counter_value("atpg.backtracks") == \
            run.stats.backtracks


class TestTimeFrameExpansion:
    def test_unrolled_matches_stepped_simulation(self):
        network = sequential_decider()
        frames = 3
        rng = random.Random(11)
        for _ in range(10):
            stream = [{pi: bool(rng.getrandbits(1))
                       for pi in network.primary_inputs}
                      for _ in range(frames)]
            network.reset(False)
            stepped = [network.step(vector) for vector in stream]

            flat = unroll(network, frames, initial_state=False)
            assignment = dict(flat.pinned)
            for frame, vector in enumerate(stream):
                for pi, value in vector.items():
                    assignment[flat.net_at(pi, frame)] = value
            values = flat.network.evaluate(assignment)
            for frame in range(frames):
                for gate in network.gates.values():
                    unrolled_net = flat.net_at(gate.output, frame)
                    assert values[unrolled_net] == \
                        stepped[frame][gate.output], \
                        f"{gate.output} at frame {frame}"

    def test_vectors_from_roundtrip(self):
        network = shift_register(2)
        flat = unroll(network, 2, initial_state=False)
        assignment = {flat.net_at("sin", 0): True,
                      flat.net_at("sin", 1): False}
        vectors = flat.vectors_from(assignment)
        assert vectors == [{"sin": True}, {"sin": False}]

    def test_unroll_rejects_empty(self):
        with pytest.raises(ValueError, match="frame"):
            unroll(shift_register(2), 0)


class TestSequentialPlan:
    def test_decider_reaches_full_toggle_coverage(self):
        plan = sequential_test_plan(sequential_decider(),
                                    initial_state=False, seed=9)
        assert plan.coverage.coverage == 1.0
        assert not plan.unresolved
        assert len(plan.vectors) == len(plan.growth)
        assert plan.growth == sorted(plan.growth)  # monotone

    def test_known_initial_state_needs_no_init_prefix(self):
        plan = sequential_test_plan(sequential_decider(),
                                    initial_state=False)
        assert plan.init_cycles == 0

    def test_x_state_initializes_self_clearing_network(self):
        # A shift register flushes X state from its input within its
        # depth; the pseudorandom prefix must discover that.
        plan = sequential_test_plan(shift_register(3), initial_state=None)
        assert 0 < plan.init_cycles
        assert plan.coverage.coverage == 1.0

    def test_plan_is_replayable(self):
        """Replaying the plan's vectors from the same initial state
        reproduces the reported toggle coverage."""
        from repro.testgen import measure_toggle_coverage

        network = sequential_decider()
        plan = sequential_test_plan(network, initial_state=False, seed=9)
        replay = measure_toggle_coverage(network, plan.vectors,
                                         initial_state=False)
        assert replay.coverage == plan.coverage.coverage
