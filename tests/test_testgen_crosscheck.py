"""Transistor-level cross-check of ATPG-predicted detectability.

``tests/corpus/atpg_stuck_crosscheck.json`` freezes a small iscas-style
network together with four collector-emitter terminal shorts, each of
which pins one gate's differential output pair to a rail — the
transistor-level realization of a gate-level stuck-at fault.  One of
them sits on a structurally constant net (``n0 = xor(i1, i1)``), so it
is provably undetectable; the other three flip observable logic, one of
them (``n3``) only through path sensitization across the downstream OR.

Two checks close the loop the ATPG engine's predictions rest on:

* each short really behaves as its mapped stuck-at fault at the
  operating point (the defect pins the pair to the stuck polarity under
  every applied vector), and
* the PODEM engine's per-vector detectability predictions match the
  fault campaign's ``LogicOracle`` verdicts defect for defect, vector
  for vector — including the undetectable case never firing.

The witness itself also replays under the engine matrix like every
other corpus scenario (``test_corpus_replay.py``).
"""

import os

import pytest

from repro.circuit.components import VoltageSource
from repro.faults import FAIL, LogicOracle, run_campaign
from repro.testgen import (StuckFault, fault_detect_matrix, generate_tests,
                           synthesize)
from repro.verify import load_scenario

WITNESS = os.path.join(os.path.dirname(__file__), "corpus",
                       "atpg_stuck_crosscheck.json")

#: Defect -> the gate-level stuck-at fault it realizes (verified
#: empirically by ``test_shorts_behave_as_stuck_outputs`` below, so the
#: mapping cannot silently rot).
STUCK_MAP = {
    "G1.Q1": StuckFault("n1", False),   # inverter output, primary output
    "G4.QT2": StuckFault("n4", True),   # or2 output, primary output
    "G3.QB2": StuckFault("n3", False),  # and2 output, internal net
    "G0.QA1": StuckFault("n0", False),  # constant-0 net: undetectable
}


@pytest.fixture(scope="module")
def crosscheck():
    scenario = load_scenario(WITNESS)
    network = scenario.network()
    tech = scenario.tech()
    design = synthesize(network, tech)
    run = generate_tests(network)
    defects = scenario.defect_objects()
    return scenario, network, tech, design, run, defects


def _drive(design, tech, vector):
    circuit = design.circuit.copy()
    for signal, value in vector.items():
        net_p, net_n = design.pair(signal)
        vp = tech.vhigh if value else tech.vlow
        vn = tech.vlow if value else tech.vhigh
        circuit.add(VoltageSource(f"V_{signal}", net_p, "0", vp))
        circuit.add(VoltageSource(f"V_{signal}b", net_n, "0", vn))
    return circuit


def test_witness_covers_both_polarities_and_an_untestable_fault(crosscheck):
    _, network, _, _, run, defects = crosscheck
    assert {d.component for d in defects} == set(STUCK_MAP)
    mapped = set(STUCK_MAP.values())
    assert {f.value for f in mapped} == {False, True}
    confirmed = set(run.confirmed)
    assert StuckFault("n0", False) in set(run.proven_untestable)
    assert mapped - {StuckFault("n0", False)} <= confirmed


def test_shorts_behave_as_stuck_outputs(crosscheck):
    """Every witness short pins its gate output pair to the mapped
    polarity under every ATPG vector — the premise of the mapping."""
    from repro.faults import inject
    from repro.sim import operating_point

    _, network, tech, design, run, defects = crosscheck
    for defect in defects:
        fault = STUCK_MAP[defect.component]
        net_p, net_n = design.pair(fault.net)
        for vector in run.vectors:
            solution = operating_point(
                inject(_drive(design, tech, vector), defect))
            measured = solution.voltage(net_p) > solution.voltage(net_n)
            assert measured == fault.value, \
                f"{defect.describe()} not stuck at {fault.value} " \
                f"under {vector}"


def test_atpg_predictions_match_campaign_verdicts(crosscheck):
    """Per vector, per defect: the campaign's logic oracle fires exactly
    when the gate-level fault model says the vector detects the mapped
    stuck-at fault."""
    _, network, tech, design, run, defects = crosscheck
    observed = network.primary_outputs
    po_pairs = [design.pair(po) for po in observed]
    faults = [STUCK_MAP[d.component] for d in defects]
    predicted = fault_detect_matrix(network, run.vectors, faults=faults,
                                    observed=observed)

    campaign_hits = {d.component: 0 for d in defects}
    for index, vector in enumerate(run.vectors):
        circuit = _drive(design, tech, vector)
        result = run_campaign(circuit, defects, [LogicOracle(po_pairs)])
        for record in result.records:
            fault = STUCK_MAP[record.defect.component]
            expected = bool(predicted[fault] >> index & 1)
            got = record.verdicts["logic"] == FAIL
            assert got == expected, \
                f"{record.defect.describe()} vs {fault.describe()} " \
                f"under vector {index}: campaign={got} atpg={expected}"
            campaign_hits[record.defect.component] += got

    # Fault-level roll-up: the ATPG vector set detects the three
    # detectable shorts and never fires on the untestable one.
    for defect in defects:
        fault = STUCK_MAP[defect.component]
        detectable = fault in set(run.confirmed)
        assert (campaign_hits[defect.component] > 0) == detectable
