"""Property-based tests (hypothesis) on engine and toolkit invariants.

These attack the foundations with randomly generated structures:

* the MNA engine must satisfy Kirchhoff's laws and linear-circuit
  superposition on arbitrary resistor networks;
* nonlinear operating points must respect device physics bounds;
* waveform measurements must obey ordering/bound invariants;
* fault injection must be additive and reversible (for short-class
  defects);
* the logic simulator must be monotone in the 3-valued information order.
"""


import numpy as np
import pytest
from hypothesis import HealthCheck, assume, given, settings, strategies as st

from repro.circuit import (
    Bjt,
    Circuit,
    Diode,
    Resistor,
    VoltageSource,
)
from repro.faults import Bridge, Pipe, inject, injected_names, strip_faults
from repro.sim import kcl_residuals, operating_point
from repro.sim.waveform import Waveform
from repro.testgen import Lfsr, full_adder, random_vectors
from repro.units import format_value, parse_value

COMMON = dict(deadline=None,
              suppress_health_check=[HealthCheck.too_slow])


# ----------------------------------------------------------------------
# Random linear networks
# ----------------------------------------------------------------------
@st.composite
def resistor_ladders(draw):
    """A random series-parallel resistor ladder driven by one source."""
    n_nodes = draw(st.integers(min_value=2, max_value=8))
    vsrc = draw(st.floats(min_value=-10, max_value=10,
                          allow_nan=False, allow_infinity=False))
    edges = []
    # A spanning chain guarantees connectivity to ground.
    for i in range(n_nodes - 1):
        r = draw(st.floats(min_value=1.0, max_value=1e6))
        edges.append((f"n{i}", f"n{i + 1}", r))
    extra = draw(st.integers(min_value=0, max_value=6))
    for _ in range(extra):
        a = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        b = draw(st.integers(min_value=0, max_value=n_nodes - 1))
        if a == b:
            continue
        r = draw(st.floats(min_value=1.0, max_value=1e6))
        edges.append((f"n{a}", f"n{b}", r))
    return vsrc, n_nodes, edges


def build_ladder(vsrc, n_nodes, edges):
    circuit = Circuit()
    circuit.add(VoltageSource("V1", "n0", "0", vsrc))
    circuit.add(Resistor("Rgnd", f"n{n_nodes - 1}", "0", 1000.0))
    for index, (a, b, r) in enumerate(edges):
        circuit.add(Resistor(f"R{index}", a, b, r))
    return circuit


class TestLinearNetworkProperties:
    @given(resistor_ladders())
    @settings(max_examples=40, **COMMON)
    def test_kcl_holds_everywhere(self, ladder):
        circuit = build_ladder(*ladder)
        op = operating_point(circuit)
        residuals = kcl_residuals(circuit, op)
        assert max(abs(r) for r in residuals.values()) < 1e-6

    @given(resistor_ladders())
    @settings(max_examples=40, **COMMON)
    def test_voltages_bounded_by_source(self, ladder):
        """A resistive network cannot exceed the source's voltage range."""
        vsrc, n_nodes, edges = ladder
        circuit = build_ladder(vsrc, n_nodes, edges)
        op = operating_point(circuit)
        low, high = min(0.0, vsrc), max(0.0, vsrc)
        for net, voltage in op.voltages().items():
            assert low - 1e-6 <= voltage <= high + 1e-6

    @given(resistor_ladders(),
           st.floats(min_value=0.1, max_value=10.0))
    @settings(max_examples=30, **COMMON)
    def test_linearity_under_source_scaling(self, ladder, scale):
        """Scaling the only source scales every node voltage (linearity)."""
        vsrc, n_nodes, edges = ladder
        assume(abs(vsrc) > 1e-3)
        op1 = operating_point(build_ladder(vsrc, n_nodes, edges))
        op2 = operating_point(build_ladder(vsrc * scale, n_nodes, edges))
        for net, voltage in op1.voltages().items():
            assert op2.voltage(net) == pytest.approx(voltage * scale,
                                                     rel=1e-6, abs=1e-9)

    @given(resistor_ladders())
    @settings(max_examples=30, **COMMON)
    def test_source_power_equals_dissipation(self, ladder):
        """Tellegen: power delivered by the source equals the sum of
        resistor dissipations."""
        circuit = build_ladder(*ladder)
        op = operating_point(circuit)
        source_power = -op.operating_info("V1").get("power", 0.0)
        dissipated = sum(op.operating_info(r.name)["power"]
                         for r in circuit.components_of_type(Resistor))
        assert dissipated == pytest.approx(source_power, rel=1e-6,
                                           abs=1e-9)


# ----------------------------------------------------------------------
# Nonlinear operating points
# ----------------------------------------------------------------------
class TestNonlinearProperties:
    @given(st.floats(min_value=0.5, max_value=20.0),
           st.floats(min_value=100.0, max_value=100e3))
    @settings(max_examples=30, **COMMON)
    def test_diode_forward_drop_band(self, vsrc, r):
        """A forward-biased silicon diode drops 0.4-1.1 V over any
        reasonable drive, and the current matches Ohm's law on R."""
        circuit = Circuit()
        circuit.add(VoltageSource("V1", "in", "0", vsrc))
        circuit.add(Resistor("R1", "in", "d", r))
        circuit.add(Diode("D1", "d", "0", isat=1e-15))
        op = operating_point(circuit)
        vd = op.voltage("d")
        assert 0.3 < vd < 1.2
        assert (vsrc - vd) / r > 0

    @given(st.floats(min_value=0.75, max_value=1.05),
           st.floats(min_value=200.0, max_value=2000.0))
    @settings(max_examples=30, **COMMON)
    def test_bjt_collector_current_physics(self, vb, rc):
        """In forward-active bias, IC ~ beta * IB and terminal currents
        sum to zero."""
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
        circuit.add(VoltageSource("VB", "b", "0", vb))
        circuit.add(Resistor("RC", "vcc", "c", rc))
        circuit.add(Bjt("Q1", "c", "b", "0", isat=4e-19, beta_f=200))
        op = operating_point(circuit)
        info = op.operating_info("Q1")
        assert info["ic"] + info["ib"] + info["ie"] == pytest.approx(
            0.0, abs=1e-12)
        if info["vce"] > 0.4:  # forward active
            assert info["ic"] == pytest.approx(200 * info["ib"], rel=0.05)

    @given(st.floats(min_value=1e3, max_value=50e3))
    @settings(max_examples=20, **COMMON)
    def test_pipe_monotone_in_resistance(self, pipe_r):
        """A smaller pipe resistance always produces a lower (or equal)
        faulty output low level."""
        from repro.cml import NOMINAL, buffer_chain

        def low_level(resistance):
            chain = buffer_chain(NOMINAL, n_stages=3, frequency=100e6)
            faulty = inject(chain.circuit, Pipe("X2.Q3", resistance))
            op = operating_point(faulty)
            return min(op.voltage("op2"), op.voltage("opb2"))

        assert low_level(pipe_r * 0.5) <= low_level(pipe_r) + 1e-6


# ----------------------------------------------------------------------
# Waveform invariants
# ----------------------------------------------------------------------
@st.composite
def waveforms(draw):
    n = draw(st.integers(min_value=4, max_value=120))
    values = draw(st.lists(
        st.floats(min_value=-50, max_value=50, allow_nan=False),
        min_size=n, max_size=n))
    times = np.linspace(0.0, 1.0, n)
    return Waveform(times, np.array(values))


class TestWaveformProperties:
    @given(waveforms(), st.floats(min_value=-49, max_value=49))
    @settings(max_examples=60, **COMMON)
    def test_crossings_sorted_and_within_range(self, wave, level):
        crossings = wave.crossings(level)
        assert crossings == sorted(crossings)
        for t in crossings:
            assert wave.t_start <= t <= wave.t_stop

    @given(waveforms(), st.floats(min_value=-49, max_value=49))
    @settings(max_examples=60, **COMMON)
    def test_rise_plus_fall_equals_both(self, wave, level):
        rises = wave.crossings(level, "rise")
        falls = wave.crossings(level, "fall")
        both = wave.crossings(level, "both")
        assert sorted(rises + falls) == both

    @given(waveforms())
    @settings(max_examples=60, **COMMON)
    def test_levels_within_extremes(self, wave):
        vlow, vhigh = wave.levels()
        assert wave.minimum() - 1e-9 <= vlow <= vhigh <= wave.maximum() + 1e-9
        assert wave.swing() <= wave.extreme_swing() + 1e-9

    @given(waveforms(), st.floats(min_value=0.0, max_value=1.0))
    @settings(max_examples=60, **COMMON)
    def test_value_at_within_extremes(self, wave, t):
        value = wave.value_at(t)
        assert wave.minimum() - 1e-9 <= value <= wave.maximum() + 1e-9

    @given(waveforms())
    @settings(max_examples=40, **COMMON)
    def test_window_preserves_values(self, wave):
        sub = wave.window(0.25, 0.75)
        assert sub.minimum() >= wave.minimum() - 1e-9
        assert sub.maximum() <= wave.maximum() + 1e-9


# ----------------------------------------------------------------------
# Fault injection
# ----------------------------------------------------------------------
class TestInjectionProperties:
    @given(st.integers(min_value=1, max_value=20),
           st.floats(min_value=1e3, max_value=10e3))
    @settings(max_examples=20, **COMMON)
    def test_inject_strip_roundtrip(self, stage, pipe_r):
        from repro.cml import NOMINAL, buffer_chain

        chain = buffer_chain(NOMINAL, n_stages=8)
        stage = stage % 8
        name = chain.instances[stage].name
        faulty = inject(chain.circuit, Pipe(f"{name}.Q3", pipe_r))
        assert len(injected_names(faulty)) == 1
        clean = strip_faults(faulty)
        assert len(clean) == len(chain.circuit)
        assert injected_names(clean) == []

    @given(st.data())
    @settings(max_examples=20, **COMMON)
    def test_bridge_symmetric(self, data):
        """Bridging (a, b) and (b, a) are electrically identical."""
        from repro.cml import NOMINAL, buffer_chain

        chain = buffer_chain(NOMINAL, n_stages=3)
        nets = ["op1", "opb1", "op2", "opb2", "op3"]
        a = data.draw(st.sampled_from(nets))
        b = data.draw(st.sampled_from([n for n in nets if n != a]))
        op_ab = operating_point(inject(chain.circuit, Bridge(a, b)))
        op_ba = operating_point(inject(chain.circuit, Bridge(b, a)))
        for net in nets:
            assert op_ab.voltage(net) == pytest.approx(op_ba.voltage(net),
                                                       abs=1e-6)


# ----------------------------------------------------------------------
# Logic simulator and patterns
# ----------------------------------------------------------------------
class TestLogicProperties:
    @given(st.integers(min_value=1, max_value=(1 << 16) - 1),
           st.integers(min_value=8, max_value=64))
    @settings(max_examples=40, **COMMON)
    def test_lfsr_never_hits_zero(self, seed, steps):
        lfsr = Lfsr(order=16, seed=seed)
        for _ in range(steps):
            lfsr.next_bit()
            assert lfsr.state != 0

    @given(st.lists(st.booleans(), min_size=3, max_size=3))
    @settings(max_examples=8, **COMMON)
    def test_x_monotonicity_full_adder(self, bits):
        """Replacing any known input by X never flips a known output to
        the opposite value (3-valued monotonicity)."""
        network = full_adder()
        names = ["a", "b", "cin"]
        full = network.evaluate(dict(zip(names, bits)))
        for dropped in names:
            partial_inputs = {n: v for n, v in zip(names, bits)
                              if n != dropped}
            partial = network.evaluate(partial_inputs)
            for signal, value in partial.items():
                if value is not None:
                    assert value == full[signal]

    @given(st.integers(min_value=1, max_value=1000))
    @settings(max_examples=30, **COMMON)
    def test_random_vectors_deterministic(self, seed):
        a = random_vectors(["x", "y"], 16, seed=seed)
        b = random_vectors(["x", "y"], 16, seed=seed)
        assert a == b


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
class TestUnitProperties:
    @given(st.floats(min_value=1e-14, max_value=1e11, allow_nan=False))
    @settings(max_examples=100, **COMMON)
    def test_format_parse_roundtrip(self, value):
        text = format_value(value, "V", digits=9)
        assert parse_value(text.replace(" ", "")) == pytest.approx(
            value, rel=1e-6)

    @given(st.floats(min_value=-1e9, max_value=1e9, allow_nan=False))
    @settings(max_examples=100, **COMMON)
    def test_parse_plain_float_identity(self, value):
        assert parse_value(str(value)) == pytest.approx(value)
