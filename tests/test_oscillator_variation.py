"""Tests for the ring oscillator and the process-variation machinery."""

import random

import pytest

from repro.circuit import Resistor
from repro.cml import NOMINAL, buffer_chain, measure_frequency, ring_oscillator
from repro.analysis.variation import (
    chain_delay,
    delay_escape_study,
    perturb_chain,
    slow_down_stage,
)

TECH = NOMINAL


class TestRingOscillator:
    def test_minimum_stages(self):
        with pytest.raises(ValueError):
            ring_oscillator(TECH, n_stages=2)

    def test_oscillates_at_expected_frequency(self):
        oscillator = ring_oscillator(TECH, n_stages=5)
        frequency = measure_frequency(oscillator)
        assert frequency is not None
        implied_stage = 1.0 / (2 * 5 * frequency)
        # Cross-check against the edge-measured stage delay (~48 ps).
        assert 30e-12 < implied_stage < 70e-12

    def test_frequency_scales_with_ring_length(self):
        f5 = measure_frequency(ring_oscillator(TECH, n_stages=5))
        f7 = measure_frequency(ring_oscillator(TECH, n_stages=7),
                               t_stop=12e-9)
        assert f5 is not None and f7 is not None
        assert f7 < f5
        assert f5 / f7 == pytest.approx(7.0 / 5.0, rel=0.15)

    def test_full_swing_oscillation(self):
        from repro.sim import transient

        oscillator = ring_oscillator(TECH, n_stages=5)
        result = transient(oscillator.circuit, t_stop=8e-9, dt=5e-12)
        tail = result.wave("r0").window(4e-9, 8e-9)
        assert tail.extreme_swing() > 0.8 * TECH.swing


class TestPerturbation:
    def test_perturb_changes_components(self):
        chain = buffer_chain(TECH, n_stages=4)
        nominal_r = chain.circuit["X1.R1"].resistance
        perturb_chain(chain, sigma=0.1, rng=random.Random(1))
        values = [chain.circuit[f"X{i}.R1"].resistance for i in (1, 2, 3, 4)]
        assert any(abs(v - nominal_r) > 1e-6 for v in values)
        assert len(set(round(v, 6) for v in values)) > 1  # per-stage

    def test_perturb_bounded(self):
        chain = buffer_chain(TECH, n_stages=8)
        perturb_chain(chain, sigma=0.1, rng=random.Random(2))
        for component in chain.circuit.components_of_type(Resistor):
            if component.name.endswith(("R1", "R2")):
                assert 0.7 * TECH.rc - 1 <= component.resistance \
                    <= 1.3 * TECH.rc + 1

    def test_zero_sigma_is_identity(self):
        chain = buffer_chain(TECH, n_stages=3)
        perturb_chain(chain, sigma=0.0, rng=random.Random(3))
        assert chain.circuit["X1.R1"].resistance == TECH.rc

    def test_slow_down_stage_scales_caps(self):
        chain = buffer_chain(TECH, n_stages=4)
        slow_down_stage(chain, 1, 2.0)
        assert chain.circuit["X2.CW1"].capacitance == pytest.approx(
            2 * TECH.c_wire)
        assert chain.circuit["X1.CW1"].capacitance == pytest.approx(
            TECH.c_wire)

    def test_slow_stage_increases_delay(self):
        clean = buffer_chain(TECH, n_stages=6)
        slow = buffer_chain(TECH, n_stages=6)
        slow_down_stage(slow, 3, 2.5)
        assert chain_delay(slow) > chain_delay(clean) + 20e-12

    def test_perturbed_delay_spread(self):
        delays = []
        for seed in range(4):
            chain = buffer_chain(TECH, n_stages=6)
            perturb_chain(chain, sigma=0.1, rng=random.Random(seed))
            delays.append(chain_delay(chain))
        assert max(delays) - min(delays) > 5e-12


class TestEscapeStudy:
    def test_study_runs_and_reports(self):
        study = delay_escape_study(n_stages=6, n_samples=3,
                                   check_detector=False, seed=5)
        assert len(study.fault_free_delays) == 3
        assert len(study.faulty_delays) == 3
        assert 0.0 <= study.escape_fraction <= 1.0
        assert "escape" in study.format()

    def test_faulty_population_slower_on_average(self):
        study = delay_escape_study(n_stages=6, n_samples=3,
                                   check_detector=False, seed=6)
        mean_ff = sum(study.fault_free_delays) / 3
        mean_faulty = sum(study.faulty_delays) / 3
        assert mean_faulty > mean_ff
