"""Golden regression corpus: every committed scenario must replay
clean under the full serial engine matrix.

Scenarios land here in two ways: hand-picked diverse cases from the
fuzzer, and (after triage + a fix) shrunk counterexamples that
``python -m repro verify`` serialized.  Either way the contract is the
same — the file is a frozen, replayable witness that the engines agree.
"""

import glob
import os

import pytest

from repro.verify import DEFAULT_ENGINES, cross_check, load_scenario

CORPUS_DIR = os.path.join(os.path.dirname(__file__), "corpus")
CORPUS = sorted(glob.glob(os.path.join(CORPUS_DIR, "*.json")))

#: Parallel campaigns fork workers per scenario; the corpus runs in CI
#: on every push, so it sticks to the serial engines (the dedicated
#: parallel-equivalence tests cover that axis).
ENGINES = tuple(e for e in DEFAULT_ENGINES if not e.parallel)


def test_corpus_is_not_empty():
    assert CORPUS, f"no scenarios committed under {CORPUS_DIR}"


@pytest.mark.parametrize(
    "path", CORPUS, ids=[os.path.basename(p) for p in CORPUS])
def test_corpus_scenario_replays_clean(path):
    scenario = load_scenario(path)
    result = cross_check(scenario, ENGINES)
    assert result.ok, result.format()
    assert result.n_checks > 0


def test_corpus_covers_detector_variants():
    variants = {load_scenario(path).detector_variant for path in CORPUS}
    assert 3 in variants, "corpus must include a shared-monitor case"
    assert variants & {1, 2}, "corpus must include a per-pair detector"


def test_corpus_covers_defects_and_transients():
    scenarios = [load_scenario(path) for path in CORPUS]
    assert any(s.defects for s in scenarios)
    assert any(s.transient is not None for s in scenarios)
    classes = {d["class"] for s in scenarios for d in s.defects}
    assert "TerminalOpen" in classes, \
        "corpus must exercise the delta engine's conventional fallback"


def test_corpus_covers_new_defect_families():
    """ISSUE 10 witnesses: the extension families stay replayable."""
    scenarios = [load_scenario(path) for path in CORPUS]
    classes = {d["class"] for s in scenarios for d in s.defects}
    assert "OxideBreakdown" in classes, \
        "corpus must freeze a soft/hard severity escape pair"
    assert "WireLeak" in classes, \
        "corpus must freeze a low-swing link healing case"
    assert any(s.links for s in scenarios), \
        "corpus must build at least one low-swing link"
    assert any(s.input_names for s in scenarios), \
        "corpus must carry a structured-input (ILA) topology"


def test_corpus_witness_files_exist():
    present = {os.path.basename(p) for p in CORPUS}
    for witness in ("oxide_severity_escape.json",
                    "lowswing_link_healing.json",
                    "ila_c_testability.json"):
        assert witness in present
