"""Conformance suite for the array-backend seam (``repro.sim.backend``).

The batched campaign engine (:mod:`repro.sim.batch`) talks to array
libraries only through :class:`ArrayBackend`; this suite pins the exact
semantics every operation must honor — most importantly the *bitwise*
guarantees the batched-verdict identity rests on.  It parametrizes over
every registered backend, so an accelerator backend registered later is
held to the same contract automatically (modulo the NumPy-only bitwise
promises, which are asserted through the numpy backend).
"""

import numpy as np
import pytest

from repro.sim import backend as backend_mod
from repro.sim.backend import (ArrayBackend, NumpyBackend,
                               available_backends, get_backend,
                               register_backend, set_backend)


@pytest.fixture(params=sorted(available_backends()))
def backend(request):
    return backend_mod._REGISTRY[request.param]()


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


# -- registry ----------------------------------------------------------


def test_default_backend_is_numpy():
    assert get_backend().name == "numpy"
    assert "numpy" in available_backends()


def test_set_backend_roundtrip():
    original = get_backend()
    try:
        active = set_backend("numpy")
        assert isinstance(active, NumpyBackend)
        assert get_backend() is active
    finally:
        backend_mod._ACTIVE = original


def test_set_backend_unknown_name():
    with pytest.raises(ValueError, match="unknown array backend"):
        set_backend("no-such-backend")


def test_register_backend_makes_name_available():
    class _Fake(NumpyBackend):
        name = "fake-test"

    original = dict(backend_mod._REGISTRY)
    try:
        register_backend("fake-test", _Fake)
        assert "fake-test" in available_backends()
        assert set_backend("fake-test").name == "fake-test"
    finally:
        backend_mod._REGISTRY.clear()
        backend_mod._REGISTRY.update(original)
        backend_mod._ACTIVE = NumpyBackend()


def test_abstract_backend_is_abstract():
    abstract = ArrayBackend()
    for call in (lambda: abstract.xp,
                 lambda: abstract.asarray([1.0]),
                 lambda: abstract.stack([np.zeros(2)]),
                 lambda: abstract.to_numpy(np.zeros(2)),
                 lambda: abstract.scatter_add(np.zeros(2), (np.array([0]),),
                                              np.array([1.0])),
                 lambda: abstract.solve_stacked(np.eye(2)[None], np.ones((1, 2))),
                 lambda: abstract.solve_one(np.eye(2), np.ones(2)),
                 lambda: abstract.lu_factor(np.eye(2)),
                 lambda: abstract.lu_solve(None, np.ones(2))):
        with pytest.raises(NotImplementedError):
            call()


# -- array creation / movement ----------------------------------------


def test_asarray_and_to_numpy_roundtrip(backend):
    data = [[1.0, 2.5], [-3.0, 0.0]]
    hosted = backend.asarray(data)
    back = backend.to_numpy(hosted)
    assert isinstance(back, np.ndarray)
    assert np.array_equal(back, np.asarray(data))


def test_asarray_dtype(backend):
    hosted = backend.asarray([1, 2, 3], dtype=float)
    assert backend.to_numpy(hosted).dtype == np.float64


def test_stack(backend, rng):
    rows = [rng.standard_normal(5) for _ in range(4)]
    stacked = backend.to_numpy(backend.stack([backend.asarray(r)
                                              for r in rows]))
    assert stacked.shape == (4, 5)
    for row, expected in zip(stacked, rows):
        assert np.array_equal(row, expected)


def test_xp_namespace_supports_batched_engine_ops(backend, rng):
    """Every ``xp.*`` call the batched Newton driver makes must exist
    and behave NumPy-compatibly."""
    xp = backend.xp
    a = xp.asarray(rng.standard_normal((3, 4)))
    assert xp.repeat(a[None, ...], 2, axis=0).shape == (2, 3, 4)
    assert xp.zeros((2, 0)).shape == (2, 0)
    assert xp.empty((2, 5)).shape == (2, 5)
    assert xp.concatenate([a, a], axis=1).shape == (3, 8)
    assert xp.stack([a, a], axis=1).shape == (3, 2, 4)
    assert bool(xp.isfinite(a).all())
    assert xp.abs(a).shape == a.shape
    assert xp.maximum(a, 0.0).shape == a.shape
    clipped = xp.clip(a, -0.5, 0.5)
    assert float(xp.max(xp.abs(clipped))) <= 0.5
    mask = xp.zeros(3, dtype=bool)
    assert not bool(mask.any())


# -- scatter_add -------------------------------------------------------


def test_scatter_add_duplicate_indices_accumulate(backend):
    """Duplicate positions must accumulate once per occurrence
    (``np.add.at`` semantics), not last-write-wins buffering."""
    target = backend.asarray(np.zeros(3))
    rows = np.array([0, 1, 1, 2, 1])
    vals = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
    backend.scatter_add(target, (rows,), vals)
    assert np.array_equal(backend.to_numpy(target),
                          np.array([1.0, 10.0, 4.0]))


def test_scatter_add_matches_serial_accumulation_bitwise(backend, rng):
    """Broadcast scatter over a stacked target must be bitwise equal to
    the serial per-row ``np.add.at`` loop — the property that makes the
    batched RHS assembly identical to the serial engine's."""
    n, k, batch = 7, 12, 5
    rows = rng.integers(0, n, size=k)
    vals = rng.standard_normal((batch, k))
    base = rng.standard_normal(n)

    expected = np.stack([base.copy() for _ in range(batch)])
    for b in range(batch):
        np.add.at(expected[b], rows, vals[b])

    target = backend.asarray(np.repeat(base[None, :], batch, axis=0))
    bidx = np.arange(batch)
    backend.scatter_add(target, (bidx[:, None], rows[None, :]),
                        backend.asarray(vals))
    assert np.array_equal(backend.to_numpy(target), expected)


def test_scatter_add_three_index_matrix_form_bitwise(backend, rng):
    """The ``(batch, row, col)`` matrix-stamping form, with duplicate
    (row, col) pairs, must match the per-member serial stamping."""
    n, k, batch = 5, 9, 4
    rows = rng.integers(0, n, size=k)
    cols = rng.integers(0, n, size=k)
    vals = rng.standard_normal((batch, k))
    base = rng.standard_normal((n, n))

    expected = np.stack([base.copy() for _ in range(batch)])
    for b in range(batch):
        np.add.at(expected[b], (rows, cols), vals[b])

    target = backend.asarray(np.repeat(base[None, :, :], batch, axis=0))
    bidx = np.arange(batch)
    backend.scatter_add(
        target, (bidx[:, None], rows[None, :], cols[None, :]),
        backend.asarray(vals))
    assert np.array_equal(backend.to_numpy(target), expected)


# -- linear algebra ----------------------------------------------------


def _well_conditioned(rng, batch, n):
    mats = rng.standard_normal((batch, n, n))
    mats += n * np.eye(n)[None, :, :]
    return mats


def test_solve_stacked_matches_per_slice_bitwise(backend, rng):
    """The stacked solve must be bitwise identical to solving each
    member separately — the dense batched replay's core guarantee."""
    batch, n = 6, 8
    mats = _well_conditioned(rng, batch, n)
    rhs = rng.standard_normal((batch, n))
    stacked = backend.to_numpy(
        backend.solve_stacked(backend.asarray(mats), backend.asarray(rhs)))
    assert stacked.shape == (batch, n)
    for b in range(batch):
        one = backend.to_numpy(
            backend.solve_one(backend.asarray(mats[b]),
                              backend.asarray(rhs[b])))
        assert np.array_equal(stacked[b], one)


def test_solve_stacked_raises_on_singular_member(backend, rng):
    batch, n = 3, 4
    mats = _well_conditioned(rng, batch, n)
    mats[1] = 0.0  # one singular member poisons the stacked solve
    rhs = rng.standard_normal((batch, n))
    with pytest.raises(Exception):
        backend.solve_stacked(backend.asarray(mats), backend.asarray(rhs))


def test_solve_one_solves(backend, rng):
    n = 6
    mat = _well_conditioned(rng, 1, n)[0]
    rhs = rng.standard_normal(n)
    x = backend.to_numpy(backend.solve_one(backend.asarray(mat),
                                           backend.asarray(rhs)))
    assert np.allclose(mat @ x, rhs, atol=1e-9)


def test_lu_factor_solve_single_rhs(backend, rng):
    n = 6
    mat = _well_conditioned(rng, 1, n)[0]
    rhs = rng.standard_normal(n)
    token = backend.lu_factor(backend.asarray(mat))
    x = backend.to_numpy(backend.lu_solve(token, backend.asarray(rhs)))
    assert np.allclose(mat @ x, rhs, atol=1e-9)


def test_lu_factor_solve_multi_rhs(backend, rng):
    """One factorization reused across a multi-RHS block — the shared
    fault-free factorization pattern of the sparse batched chord."""
    n, k = 6, 5
    mat = _well_conditioned(rng, 1, n)[0]
    block = rng.standard_normal((n, k))
    token = backend.lu_factor(backend.asarray(mat))
    X = backend.to_numpy(backend.lu_solve(token, backend.asarray(block)))
    assert X.shape == (n, k)
    assert np.allclose(mat @ X, block, atol=1e-9)
