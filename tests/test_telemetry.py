"""Unit tests for the structured telemetry layer (repro.telemetry)."""

import json

import pytest

from repro.sim.dc import NewtonStats
from repro.telemetry import (
    InMemorySink,
    JsonlSink,
    MetricsRegistry,
    NEWTON_COUNTERS,
    RunReport,
    Telemetry,
    TRACE_ENV_VAR,
    Tracer,
    from_env,
    read_jsonl,
    record_newton_stats,
    telemetry_for,
)


class TestTracer:
    def test_nesting_assigns_parents(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current is inner
            assert tracer.current is outer
        assert tracer.current is None
        events = sink.events
        # Children close (and emit) before their parents.
        assert [e["name"] for e in events] == ["inner", "outer"]
        inner_ev, outer_ev = events
        assert inner_ev["parent_id"] == outer_ev["span_id"]
        assert outer_ev["parent_id"] is None
        assert all(e["duration_s"] >= 0 for e in events)

    def test_attrs_at_open_and_set(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        with tracer.span("op", kind="dc") as span:
            span.set(iterations=7)
        assert sink.events[0]["attrs"] == {"kind": "dc", "iterations": 7}

    def test_exception_closes_span_with_error_attr(self):
        sink = InMemorySink()
        tracer = Tracer([sink])
        with pytest.raises(ValueError):
            with tracer.span("outer"):
                with tracer.span("inner"):
                    raise ValueError("boom")
        assert tracer.current is None
        names = [e["name"] for e in sink.events]
        assert names == ["inner", "outer"]
        assert all(e["attrs"]["error"] == "ValueError" for e in sink.events)

    def test_ingest_remaps_ids_and_reparents_roots(self):
        # A worker trace: defect(1) -> analysis(2), children emitted first.
        worker_events = [
            {"type": "span", "name": "analysis", "span_id": 2,
             "parent_id": 1, "t_start": 0.0, "duration_s": 0.1,
             "attrs": {}},
            {"type": "span", "name": "defect", "span_id": 1,
             "parent_id": None, "t_start": 0.0, "duration_s": 0.2,
             "attrs": {}},
            {"type": "metrics", "counters": {"x": 1}},
        ]
        sink = InMemorySink()
        tracer = Tracer([sink])
        with tracer.span("campaign") as campaign:
            tracer.ingest(worker_events, parent_id=campaign.span_id)
        by_name = {e["name"]: e for e in sink.events
                   if e.get("type") == "span"}
        # Worker ids collide with the parent's id space and get remapped.
        assert by_name["defect"]["span_id"] != 1
        assert by_name["defect"]["parent_id"] == campaign.span_id
        assert by_name["analysis"]["parent_id"] == by_name["defect"]["span_id"]
        # Non-span events pass through untouched.
        assert {"type": "metrics", "counters": {"x": 1}} in sink.events


class TestMetrics:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("c").add()
        registry.counter("c").add(4)
        registry.gauge("g").set(2.5)
        for value in (1.0, 3.0):
            registry.histogram("h").observe(value)
        snap = registry.snapshot()
        assert snap["counters"] == {"c": 5}
        assert snap["gauges"] == {"g": 2.5}
        h = snap["histograms"]["h"]
        assert {k: h[k] for k in ("count", "sum", "min", "max", "mean")} \
            == {"count": 2, "sum": 4.0, "min": 1.0, "max": 3.0, "mean": 2.0}
        # Quantiles ride along (log-bucket approximations, clamped).
        assert h["p50"] == 1.0
        assert h["p99"] == 3.0
        assert sum(h["buckets"].values()) == 2

    def test_merge_adds_counters_and_histograms(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n").add(2)
        a.histogram("h").observe(1.0)
        a.gauge("g").set(1.0)
        b.counter("n").add(3)
        b.histogram("h").observe(5.0)
        b.gauge("g").set(9.0)
        a.merge(b.snapshot())
        snap = a.snapshot()
        assert snap["counters"] == {"n": 5}
        assert snap["gauges"] == {"g": 9.0}  # last write wins
        assert snap["histograms"]["h"]["count"] == 2
        assert snap["histograms"]["h"]["min"] == 1.0
        assert snap["histograms"]["h"]["max"] == 5.0

    def test_merge_empty_histogram_is_noop(self):
        a = MetricsRegistry()
        a.histogram("h").observe(2.0)
        a.merge({"histograms": {"h": {"count": 0, "sum": 0.0,
                                      "min": None, "max": None}}})
        assert a.histogram("h").count == 1

    def test_record_newton_stats_skips_zeros(self):
        registry = MetricsRegistry()
        stats = NewtonStats(strategy="newton")
        stats.iterations = 7
        stats.n_factorizations = 2
        record_newton_stats(registry, stats)
        counters = registry.snapshot()["counters"]
        assert counters == {"newton.iterations": 7,
                            "newton.factorizations": 2}

    def test_newton_counters_cover_newtonstats(self):
        stats = NewtonStats()
        for attr, _name in NEWTON_COUNTERS:
            assert hasattr(stats, attr)


class TestSinks:
    def test_jsonl_roundtrip_with_meta(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        sink = JsonlSink(str(path))
        sink.emit({"type": "span", "name": "x", "span_id": 1,
                   "parent_id": None, "t_start": 0.0, "duration_s": 0.0,
                   "attrs": {}})
        sink.close()
        events = read_jsonl(str(path))
        assert events[0]["type"] == "meta"
        assert events[0]["schema"] == 1
        assert events[1]["name"] == "x"
        # Compact one-object-per-line encoding.
        lines = path.read_text().strip().splitlines()
        assert all(json.loads(line) for line in lines)

    def test_jsonl_appends_across_reopens(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        for _ in range(2):
            sink = JsonlSink(str(path))
            sink.emit({"type": "metrics"})
            sink.close()
        events = read_jsonl(str(path))
        assert [e["type"] for e in events] == ["meta", "metrics",
                                               "meta", "metrics"]


class TestTelemetryFacade:
    def test_capturing_records_spans_and_metrics(self):
        tel = Telemetry.capturing()
        with tel.span("analysis", kind="dc"):
            pass
        stats = NewtonStats()
        stats.iterations = 3
        tel.record_newton(stats)
        tel.flush_metrics()
        events = tel.events()
        assert events[0]["name"] == "analysis"
        assert events[-1]["type"] == "metrics"
        assert events[-1]["counters"]["newton.iterations"] == 3
        histo = events[-1]["histograms"]["newton.iterations_per_solve"]
        assert histo["count"] == 1 and histo["mean"] == 3.0

    def test_events_requires_capturing(self):
        with pytest.raises(RuntimeError):
            Telemetry().events()

    def test_telemetry_for_prefers_options(self, monkeypatch):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)

        class Options:
            telemetry = None

        assert telemetry_for(Options()) is None
        assert telemetry_for(object()) is None
        Options.telemetry = tel = Telemetry.capturing()
        assert telemetry_for(Options()) is tel

    def test_from_env_shares_one_instance_per_path(self, monkeypatch,
                                                   tmp_path):
        monkeypatch.delenv(TRACE_ENV_VAR, raising=False)
        assert from_env() is None
        path = str(tmp_path / "env.jsonl")
        monkeypatch.setenv(TRACE_ENV_VAR, path)
        tel = from_env()
        assert tel is not None and from_env() is tel
        with tel.span("analysis"):
            pass
        tel.close()
        assert [e["type"] for e in read_jsonl(path)] == ["meta", "span"]


def _toy_campaign_events():
    tel = Telemetry.capturing()
    with tel.span("campaign", n_defects=2) as campaign:
        for name, iters, verdicts in (("slowpoke", 40, {"detector": "fail"}),
                                      ("quickie", 3, {"detector": "pass"})):
            with tel.span("defect", defect=name) as defect:
                with tel.span("analysis", kind="dc"):
                    with tel.span("newton_solve", strategy="newton") as ns:
                        ns.set(iterations=iters)
                stats = NewtonStats()
                stats.iterations = iters
                tel.record_newton(stats)
                defect.set(converged=True, solver="full",
                           newton_iterations=iters, verdicts=verdicts)
        campaign.set(newton_iterations=43)
    tel.flush_metrics()
    return tel.events()


class TestRunReport:
    def test_structure_and_headline_numbers(self):
        report = RunReport.from_events(_toy_campaign_events())
        assert len(report.named("campaign")) == 1
        assert len(report.named("defect")) == 2
        assert report.slowest_defect_name() in {"slowpoke", "quickie"}
        assert report.total_newton_iterations() == 43
        assert report.verdict_counts() == {
            "detector": {"fail": 1, "pass": 1}}

    def test_total_iterations_span_fallback(self):
        events = [e for e in _toy_campaign_events()
                  if e.get("type") == "span"]
        report = RunReport.from_events(events)
        assert report.total_newton_iterations() == 43

    def test_cumulative_metrics_snapshots_not_double_counted(self):
        events = _toy_campaign_events()
        # A second (cumulative) flush of the same registry state must
        # not double the counters.
        events = events + [events[-1]]
        report = RunReport.from_events(events)
        assert report.total_newton_iterations() == 43

    def test_render_text_and_markdown(self):
        report = RunReport.from_events(_toy_campaign_events())
        text = report.render()
        for needle in ("Run report", "Per-phase time breakdown",
                       "Slowest defects", "slowpoke", "Detector verdicts",
                       "newton.iterations", "total newton iterations: 43"):
            assert needle in text
        markdown = report.render(markdown=True)
        assert "### Slowest defects" in markdown
        assert "| defect |" in markdown

    def test_from_jsonl(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tel = Telemetry.to_jsonl(str(path))
        with tel.span("campaign"):
            with tel.span("defect", defect="d1"):
                pass
        tel.flush_metrics()
        tel.close()
        report = RunReport.from_jsonl(str(path))
        assert len(report.spans) == 2
        campaign = report.named("campaign")[0]
        assert report.children_of(campaign)[0]["name"] == "defect"
