"""AC small-signal analysis tests against analytic transfer functions."""

import math

import numpy as np
import pytest

from repro.circuit import Bjt, Capacitor, Circuit, Resistor, VoltageSource
from repro.cml import NOMINAL, VGND_NET, VCS_NET, buffer_cell
from repro.circuit.subcircuit import instantiate
from repro.circuit.devices import THERMAL_VOLTAGE
from repro.sim import ac_analysis, logspace_frequencies


def rc_lowpass(r=1000.0, c=1e-9):
    circuit = Circuit()
    circuit.add(VoltageSource("VIN", "in", "0", 0.0))
    circuit.add(Resistor("R1", "in", "out", r))
    circuit.add(Capacitor("C1", "out", "0", c))
    return circuit


class TestRcTransfer:
    def test_corner_magnitude_and_phase(self):
        r, c = 1000.0, 1e-9
        fc = 1.0 / (2 * math.pi * r * c)
        result = ac_analysis(rc_lowpass(r, c), [fc], "VIN")
        transfer = result.voltage("out")[0]
        assert abs(transfer) == pytest.approx(1 / math.sqrt(2), rel=1e-6)
        assert np.angle(transfer, deg=True) == pytest.approx(-45.0,
                                                             abs=0.01)

    def test_analytic_curve(self):
        r, c = 1000.0, 1e-9
        freqs = logspace_frequencies(1e3, 1e9, points_per_decade=5)
        result = ac_analysis(rc_lowpass(r, c), freqs, "VIN")
        for f, measured in zip(freqs, result.voltage("out")):
            expected = 1.0 / (1.0 + 2j * math.pi * f * r * c)
            assert measured == pytest.approx(expected, rel=1e-9)

    def test_bandwidth_3db(self):
        r, c = 1000.0, 1e-9
        fc = 1.0 / (2 * math.pi * r * c)
        freqs = logspace_frequencies(1e3, 1e9, points_per_decade=20)
        result = ac_analysis(rc_lowpass(r, c), freqs, "VIN")
        assert result.bandwidth_3db("out") == pytest.approx(fc, rel=0.02)

    def test_input_follows_source(self):
        result = ac_analysis(rc_lowpass(), [1e6], "VIN")
        assert abs(result.voltage("in")[0]) == pytest.approx(1.0, rel=1e-9)

    def test_magnitude_db(self):
        result = ac_analysis(rc_lowpass(), [1e3], "VIN")
        assert result.magnitude_db("out")[0] == pytest.approx(0.0, abs=0.1)

    def test_ground_is_zero(self):
        result = ac_analysis(rc_lowpass(), [1e6], "VIN")
        assert np.all(result.voltage("0") == 0.0)

    def test_bad_source_rejected(self):
        circuit = rc_lowpass()
        with pytest.raises(TypeError):
            ac_analysis(circuit, [1e6], "R1")

    def test_unknown_net_rejected(self):
        result = ac_analysis(rc_lowpass(), [1e6], "VIN")
        with pytest.raises(KeyError):
            result.voltage("zap")


class TestBjtSmallSignal:
    def test_balanced_buffer_gain(self):
        """A balanced CML buffer has single-ended gain ~ gm*Rc/2 where gm
        is the transconductance of one half-current device."""
        tech = NOMINAL
        circuit = Circuit()
        tech.add_supplies(circuit)
        circuit.add(VoltageSource("VIN", "a", "0", tech.vmid))
        circuit.add(VoltageSource("VREF", "ab", "0", tech.vmid))
        instantiate(circuit, buffer_cell(tech), "X1", {
            "a": "a", "ab": "ab", "op": "op", "opb": "opb",
            VGND_NET: VGND_NET, VCS_NET: VCS_NET})
        result = ac_analysis(circuit, [1e6], "VIN")
        gm = (tech.itail / 2) / THERMAL_VOLTAGE
        expected = gm * tech.rc / 2
        assert abs(result.voltage("opb")[0]) == pytest.approx(expected,
                                                              rel=0.1)

    def test_buffer_bandwidth_in_ghz_range(self):
        """The calibrated gate's output pole sits at a few GHz, matching
        the ~50 ps stage delay and the Fig. 5 roll-off onset."""
        tech = NOMINAL
        circuit = Circuit()
        tech.add_supplies(circuit)
        circuit.add(VoltageSource("VIN", "a", "0", tech.vmid))
        circuit.add(VoltageSource("VREF", "ab", "0", tech.vmid))
        instantiate(circuit, buffer_cell(tech), "X1", {
            "a": "a", "ab": "ab", "op": "op", "opb": "opb",
            VGND_NET: VGND_NET, VCS_NET: VCS_NET})
        freqs = logspace_frequencies(1e7, 3e10, points_per_decade=10)
        result = ac_analysis(circuit, freqs, "VIN")
        bandwidth = result.bandwidth_3db("opb")
        assert bandwidth is not None
        assert 5e8 < bandwidth < 2e10

    def test_emitter_follower_unity_gain(self):
        tech = NOMINAL
        circuit = Circuit()
        circuit.add(VoltageSource("VCC", "vcc", "0", 3.3))
        circuit.add(VoltageSource("VIN", "b", "0", 2.5))
        circuit.add(Bjt("Q1", "vcc", "b", "e", **tech.bjt_params()))
        circuit.add(Resistor("RE", "e", "0", 4800.0))
        result = ac_analysis(circuit, [1e6], "VIN")
        gain = abs(result.voltage("e")[0])
        assert 0.95 < gain < 1.0
