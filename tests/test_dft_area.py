"""Tests of the area-overhead model (sections 6.4-6.5)."""

import pytest

from repro.dft import (
    area_variant1,
    area_variant2,
    area_variant3_shared,
    area_xor_observer,
    overhead_table,
)


class TestAreaReports:
    def test_variant1_scales_with_gates(self):
        small = area_variant1(10)
        large = area_variant1(100)
        assert large.total == pytest.approx(10 * small.total)

    def test_shared_amortises(self):
        """Per-gate effective area falls as more gates share the monitor."""
        few = area_variant3_shared(5)
        many = area_variant3_shared(45)
        assert many.per_gate_effective < few.per_gate_effective

    def test_sharing_bound_adds_groups(self):
        one_group = area_variant3_shared(45, max_share=45)
        two_groups = area_variant3_shared(46, max_share=45)
        assert two_groups.shared_devices == pytest.approx(
            2 * one_group.shared_devices)

    def test_dual_emitter_cheaper_than_pair(self):
        pair = area_variant3_shared(100, dual_emitter=False)
        dual = area_variant3_shared(100, dual_emitter=True)
        assert dual.per_gate_devices < pair.per_gate_devices

    def test_xor_observer_most_expensive_per_gate(self):
        """The paper's prior-art comparison: one test gate per circuit
        gate is 'very high area overhead'."""
        n = 100
        xor = area_xor_observer(n)
        shared = area_variant3_shared(n)
        dual = area_variant3_shared(n, dual_emitter=True)
        assert xor.per_gate_effective > shared.per_gate_effective
        assert xor.per_gate_effective > 2 * dual.per_gate_effective

    def test_overhead_table_ordering(self):
        table = overhead_table(100)
        assert set(table) == {
            "xor-observer", "variant1", "variant2", "variant3-shared",
            "variant3-dual-emitter",
        }
        assert table["variant3-dual-emitter"] < table["variant3-shared"]
        assert table["variant3-shared"] < table["xor-observer"]
        # The headline claim: 'little overhead' — shared dual-emitter
        # monitoring costs less than half a buffer per gate.
        assert table["variant3-dual-emitter"] < 0.5

    def test_variant2_cheaper_than_variant1_in_area(self):
        # Variant 1 needs a large detector device; variant 2 uses units.
        assert (area_variant2(10).per_gate_effective
                < area_variant1(10).per_gate_effective)
