"""Tests for the defect models, injector and fault catalog."""

import pytest

from repro.circuit import Capacitor, Resistor
from repro.cml import NOMINAL, buffer_chain
from repro.faults import (
    Bridge,
    Pipe,
    ResistorOpen,
    ResistorShort,
    TerminalOpen,
    TerminalShort,
    catalog_summary,
    enumerate_defects,
    inject,
    injected_names,
    resistor_sites,
    strip_faults,
    transistor_sites,
)
from repro.sim import operating_point, run_cycles

TECH = NOMINAL


@pytest.fixture()
def chain():
    return buffer_chain(TECH, frequency=100e6)


class TestPipe:
    def test_adds_resistor_across_ce(self, chain):
        faulty = inject(chain.circuit, Pipe("DUT.Q3", 4e3))
        names = injected_names(faulty)
        assert len(names) == 1
        pipe = faulty[names[0]]
        q3 = faulty["DUT.Q3"]
        assert {pipe.net("p"), pipe.net("n")} == {q3.net("c"), q3.net("e")}
        assert pipe.resistance == 4e3

    def test_original_untouched(self, chain):
        count = len(chain.circuit)
        inject(chain.circuit, Pipe("DUT.Q3"))
        assert len(chain.circuit) == count
        assert injected_names(chain.circuit) == []

    def test_increases_tail_current(self, chain):
        faulty = inject(chain.circuit, Pipe("DUT.Q3", 4e3))
        # DC with the input stuck at its t=0 value: the DUT on-branch
        # carries tail + pipe current, so its low level drops.
        op_clean = operating_point(chain.circuit)
        op_faulty = operating_point(faulty)
        low_clean = min(op_clean.voltage("op"), op_clean.voltage("opb"))
        low_faulty = min(op_faulty.voltage("op"), op_faulty.voltage("opb"))
        assert low_faulty < low_clean - 0.15

    def test_rejects_non_transistor(self, chain):
        with pytest.raises(TypeError):
            inject(chain.circuit, Pipe("DUT.R1"))

    def test_describe(self):
        assert "4000" in Pipe("DUT.Q3", 4e3).describe()
        assert "DUT.Q3" in Pipe("DUT.Q3").name


class TestTerminalShort:
    def test_fig2_stuck_at_zero(self, chain):
        """C-E short on Q2 sticks output op at logic 0 (paper Fig. 2)."""
        faulty = inject(chain.circuit, TerminalShort("DUT.Q2", "c", "e"))
        result = run_cycles(faulty, 100e6, cycles=2.0, points_per_cycle=300)
        op_wave = result.wave("op").window(5e-9, 20e-9)
        opb_wave = result.wave("opb").window(5e-9, 20e-9)
        # op is pinned at the low level (the collector resistor now feeds
        # the tail directly) — it never rises toward logic high...
        # (allowing ~30 mV of capacitive feedthrough ripple)
        assert op_wave.extreme_swing() < 0.15 * TECH.swing
        assert op_wave.maximum() < TECH.vlow + 0.03
        # ...so the differential value op-opb never goes positive by more
        # than a sliver: a stuck-at-0 as seen by the next stage.
        assert (op_wave.values - opb_wave.values).max() < 0.05

    def test_same_net_rejected(self, chain):
        faulty = chain.circuit.copy()
        # Q1 and Q2 share the tail net; short e-e of one device is a no-op.
        with pytest.raises(ValueError, match="no-op"):
            TerminalShort("DUT.Q1", "e", "e").apply(faulty)

    def test_multiple_shorts_unique_names(self, chain):
        faulty = inject(chain.circuit, [
            TerminalShort("DUT.Q2", "c", "e"),
            TerminalShort("DUT.Q2", "b", "e"),
        ])
        assert len(injected_names(faulty)) == 2


class TestOpen:
    def test_open_splits_terminal(self, chain):
        faulty = inject(chain.circuit, TerminalOpen("DUT.Q1", "b"))
        q1 = faulty["DUT.Q1"]
        assert q1.net("b") != chain.circuit["DUT.Q1"].net("b")
        names = injected_names(faulty)
        assert len(names) == 2  # R and C of the open model
        kinds = {type(faulty[n]) for n in names}
        assert kinds == {Resistor, Capacitor}

    def test_open_base_kills_switching(self, chain):
        faulty = inject(chain.circuit, TerminalOpen("DUT.Q1", "b"))
        result = run_cycles(faulty, 100e6, cycles=2.0, points_per_cycle=300)
        # With Q1's base floating the DUT can no longer steer properly:
        # the differential output barely toggles compared to nominal.
        swing = result.differential("op", "opb").window(5e-9, 20e-9)
        assert swing.extreme_swing() < 1.5 * TECH.swing  # no clean 2*swing

    def test_resistor_open_isolates(self, chain):
        faulty = inject(chain.circuit, ResistorOpen("DUT.R1"))
        op = operating_point(faulty)
        # DUT.R1 feeds the 'op' output; opened, the output can only be
        # pulled far below the nominal low level by the tail current
        # through the (now huge) open resistance path.
        assert min(op.voltage("op"), op.voltage("opb")) < TECH.vlow


class TestBridgeAndResistorShort:
    def test_bridge_couples_nets(self, chain):
        faulty = inject(chain.circuit, Bridge("op", "opb", 1.0))
        result = run_cycles(faulty, 100e6, cycles=2.0, points_per_cycle=300)
        diff = result.differential("op", "opb").window(5e-9, 20e-9)
        assert diff.extreme_swing() < 0.2 * TECH.swing

    def test_bridge_unknown_net(self, chain):
        with pytest.raises(KeyError):
            inject(chain.circuit, Bridge("op", "bogus"))

    def test_bridge_same_net(self, chain):
        with pytest.raises(ValueError):
            inject(chain.circuit, Bridge("op", "op"))

    def test_resistor_short_kills_swing_on_one_side(self, chain):
        faulty = inject(chain.circuit, ResistorShort("DUT.R2"))
        result = run_cycles(faulty, 100e6, cycles=2.0, points_per_cycle=300)
        # R2 shorted: opb is pinned at vgnd.
        opb = result.wave("opb").window(5e-9, 20e-9)
        assert opb.extreme_swing() < 0.02
        assert opb.minimum() > TECH.vhigh - 0.02

    def test_resistor_short_type_check(self, chain):
        with pytest.raises(TypeError):
            inject(chain.circuit, ResistorShort("DUT.Q1"))


class TestInjector:
    def test_inject_records_defects(self, chain):
        defect = Pipe("DUT.Q3", 4e3)
        faulty = inject(chain.circuit, defect)
        assert faulty.injected_defects == [defect]
        assert "pipe" in faulty.title

    def test_strip_faults_roundtrip(self, chain):
        faulty = inject(chain.circuit, [Pipe("DUT.Q3"),
                                        Bridge("op", "opb")])
        clean = strip_faults(faulty)
        assert injected_names(clean) == []
        assert len(clean) == len(chain.circuit)

    def test_stripped_circuit_behaves_nominally(self, chain):
        faulty = inject(chain.circuit, Pipe("DUT.Q3", 1e3))
        clean = strip_faults(faulty)
        op_clean = operating_point(clean)
        op_ref = operating_point(chain.circuit)
        assert op_clean.voltage("op") == pytest.approx(op_ref.voltage("op"),
                                                       abs=1e-6)


class TestCatalog:
    def test_transistor_sites_count(self, chain):
        # 8 buffers x 3 transistors each.
        assert len(transistor_sites(chain.circuit)) == 24

    def test_resistor_sites_count(self, chain):
        # 8 buffers x 2 collector resistors.
        assert len(resistor_sites(chain.circuit)) == 16

    def test_pipe_enumeration_with_values(self, chain):
        pipes = [d for d in enumerate_defects(chain.circuit, kinds=("pipe",),
                                              pipe_resistances=(1e3, 4e3))]
        assert len(pipes) == 48
        assert {p.resistance for p in pipes} == {1e3, 4e3}

    def test_terminal_short_enumeration(self, chain):
        shorts = list(enumerate_defects(chain.circuit,
                                        kinds=("terminal-short",)))
        # 3 terminal pairs per BJT, all on distinct nets here.
        assert len(shorts) == 24 * 3

    def test_catalog_summary_keys(self, chain):
        summary = catalog_summary(chain.circuit)
        assert summary["pipe"] == 24
        assert summary["resistor-short"] == 16
        assert summary["open"] == 24 * 3
        assert summary["bridge"] > 0

    def test_unknown_kind_rejected(self, chain):
        with pytest.raises(ValueError):
            list(enumerate_defects(chain.circuit, kinds=("wormhole",)))

    def test_fault_elements_not_re_enumerated(self, chain):
        faulty = inject(chain.circuit, Pipe("DUT.Q3"))
        assert len(transistor_sites(faulty)) == 24
        assert "FAULT" not in " ".join(resistor_sites(faulty))

    def test_every_enumerated_defect_injects(self, chain):
        count = 0
        for defect in enumerate_defects(chain.circuit,
                                        kinds=("pipe", "terminal-short",
                                               "open", "resistor-short",
                                               "resistor-open")):
            faulty = inject(chain.circuit, defect)
            assert injected_names(faulty)
            count += 1
        assert count > 100
