"""Shared pytest configuration: a per-test hang watchdog.

The robustness work in this repo exists precisely because a hung solve
or worker can wedge a long batch run; the test suite gets the same
protection.  When ``pytest-timeout`` is installed (CI passes
``--timeout`` on the command line) it owns per-test deadlines and this
conftest stays out of the way.  Where the plugin is absent, an
equivalent ``SIGALRM``-based alarm aborts any test that runs longer
than ``REPRO_TEST_TIMEOUT_S`` seconds (default 300), so a regression
that reintroduces an unbounded hang fails the suite instead of
stalling it forever.

Individual tests may override the budget with
``@pytest.mark.timeout(seconds)`` — the same marker pytest-timeout
uses, so the override works under either mechanism.

Hypothesis profiles: property tests run under the ``dev`` profile by
default (few examples, fast inner loop) and the ``ci`` profile in CI
(more examples, derandomized so every run checks the same cases and
failures reproduce).  Select with ``HYPOTHESIS_PROFILE=ci pytest``.
"""

import os
import signal

import pytest

DEFAULT_TIMEOUT_S = float(os.environ.get("REPRO_TEST_TIMEOUT_S", "300"))

try:
    from hypothesis import HealthCheck, settings
except ImportError:                                  # pragma: no cover
    pass  # property tests self-skip without hypothesis
else:
    _COMMON = dict(deadline=None,
                   suppress_health_check=[HealthCheck.too_slow])
    settings.register_profile("dev", max_examples=25, **_COMMON)
    # derandomize pins the example stream: CI failures replay locally
    # with HYPOTHESIS_PROFILE=ci, and green CI is not luck.
    settings.register_profile("ci", max_examples=150, derandomize=True,
                              print_blob=True, **_COMMON)
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))

try:
    import pytest_timeout  # noqa: F401  (presence check only)
    _HAVE_PLUGIN = True
except ImportError:
    _HAVE_PLUGIN = False

_CAN_ALARM = hasattr(signal, "SIGALRM")


def pytest_configure(config):
    if not _HAVE_PLUGIN:
        # pytest-timeout registers this marker itself when installed.
        config.addinivalue_line(
            "markers",
            "timeout(seconds): abort the test if it runs longer than "
            "this many seconds (SIGALRM fallback watchdog)")


@pytest.fixture(autouse=True)
def _hang_watchdog(request):
    if _HAVE_PLUGIN or not _CAN_ALARM:
        yield
        return
    seconds = DEFAULT_TIMEOUT_S
    marker = request.node.get_closest_marker("timeout")
    if marker is not None and marker.args:
        seconds = float(marker.args[0])
    if seconds <= 0:
        yield
        return

    def on_alarm(signum, frame):
        pytest.fail(f"test exceeded the {seconds:g}s hang watchdog",
                    pytrace=False)

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, seconds)
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
