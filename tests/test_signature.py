"""Tests for MISR signature analysis (BIST output compaction)."""

import pytest

from repro.testgen import (
    Misr,
    bist_session,
    full_adder,
    parity_tree,
    random_vectors,
    sequential_decider,
    shift_register,
    stuck_output_detected,
)


class TestMisr:
    def test_deterministic(self):
        a = Misr(16)
        b = Misr(16)
        for bits in ([True, False], [False, False], [True, True]):
            a.clock(bits)
            b.clock(bits)
        assert a.signature == b.signature

    def test_sensitive_to_single_bit(self):
        a = Misr(16)
        b = Misr(16)
        a.clock([True, False])
        b.clock([False, False])
        assert a.signature != b.signature

    def test_sensitive_to_order(self):
        a = Misr(16)
        b = Misr(16)
        for bits in ([True], [False]):
            a.clock(bits)
        for bits in ([False], [True]):
            b.clock(bits)
        assert a.signature != b.signature

    def test_x_poisons_validity(self):
        misr = Misr(16)
        misr.clock([True, None])
        assert not misr.valid

    def test_width_validation(self):
        with pytest.raises(ValueError):
            Misr(width=12)
        misr = Misr(8)
        with pytest.raises(ValueError):
            misr.clock([False] * 9)

    def test_state_stays_in_width(self):
        misr = Misr(8)
        for i in range(100):
            misr.clock([bool(i & 1)] * 8)
            assert 0 <= misr.state < (1 << 8)


class TestBistSession:
    def test_golden_signature_reproducible(self):
        vectors = random_vectors(["a", "b", "cin"], 32, seed=2)
        golden1 = bist_session(full_adder(), vectors)
        golden2 = bist_session(full_adder(), vectors)
        assert golden1.matches(golden2)

    def test_combinational_fault_changes_signature(self):
        network = full_adder()
        assert stuck_output_detected(network, "sum", True)
        assert stuck_output_detected(network, "cout", False)

    def test_internal_stuck_detected(self):
        network = full_adder()
        assert stuck_output_detected(network, "axb", False)

    def test_sequential_bist(self):
        network = shift_register(4)
        vectors = random_vectors(["sin"], 64, seed=4)
        golden = bist_session(network, vectors)
        assert golden.valid
        assert stuck_output_detected(shift_register(4), "q1", True)

    def test_unknown_state_invalidates(self):
        network = sequential_decider()
        vectors = random_vectors(["go"], 8, seed=5)
        result = bist_session(network, vectors, initial_state=None)
        # Until initialization completes, outputs carry X: the signature
        # must refuse to vouch for the run (the ref-[13] requirement).
        assert not result.valid

    def test_no_outputs_rejected(self):
        from repro.testgen import LogicNetwork

        network = LogicNetwork()
        network.add_input("a")
        network.add_gate("G", "buffer", ["a"], "x")
        with pytest.raises(ValueError):
            bist_session(network, [{"a": True}])

    def test_observed_subset(self):
        network = parity_tree(4)
        vectors = random_vectors(network.primary_inputs, 16, seed=6)
        result = bist_session(network, vectors,
                              observed=[network.primary_outputs[0]])
        assert result.cycles == 16
        assert result.valid
