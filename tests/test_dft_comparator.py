"""Tests of the variant-3 comparator, hysteresis and load sharing."""

import pytest

from repro.circuit import Circuit, Pwl, VoltageSource
from repro.cml import NOMINAL, buffer_chain
from repro.dft import (
    ComparatorConfig,
    MAX_SAFE_SHARE,
    attach_comparator,
    build_shared_monitor,
    ensure_vtest,
    group_pairs,
    instrument_chain,
)
from repro.faults import Pipe, inject
from repro.sim import hysteresis_thresholds, operating_point, transient

TECH = NOMINAL


def _forced_vout_fixture(config=None):
    """Comparator with vout forced by a slow triangular ramp."""
    circuit = Circuit()
    TECH.add_supplies(circuit)
    ensure_vtest(circuit, TECH)
    circuit.add(VoltageSource("VFORCE", "vout", "0",
                              Pwl([(0.0, 3.70), (100e-9, 3.30),
                                   (200e-9, 3.70)])))
    nets = attach_comparator(circuit, "vout", tech=TECH,
                             config=config or ComparatorConfig())
    return circuit, nets


def _flag_state(op, nets) -> bool:
    """True = PASS (flag above flagb)."""
    return op.voltage(nets.flag) > op.voltage(nets.flagb)


class TestHysteresis:
    @pytest.fixture(scope="class")
    def thresholds(self):
        circuit, nets = _forced_vout_fixture()
        result = transient(circuit, t_stop=200e-9, dt=0.1e-9)
        flag_diff = result.wave(nets.flag) - result.wave(nets.flagb)
        return hysteresis_thresholds(result.wave("vout"), flag_diff, 0.0)

    def test_two_distinct_thresholds(self, thresholds):
        detect, release = thresholds
        assert detect is not None and release is not None
        assert release > detect

    def test_band_width_tens_of_mv(self, thresholds):
        """Paper Fig. 12: guaranteed-detect 3.54 V, guaranteed-pass 3.57 V
        — a band of a few tens of mV just below vtest."""
        detect, release = thresholds
        width = release - detect
        assert 0.01 < width < 0.08

    def test_band_sits_below_vtest(self, thresholds):
        detect, release = thresholds
        assert TECH.vtest - 0.25 < detect < TECH.vtest
        assert release < TECH.vtest

    def test_no_false_detection_at_quiescent_level(self, thresholds):
        """A fault-free single-gate monitor rests well above the release
        threshold: a good gate is never wrongly declared defective."""
        chain = buffer_chain(TECH, n_stages=1)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets)
        op = operating_point(chain.circuit)
        _, release = thresholds
        assert op.voltage(monitor.vout) > release

    def test_wider_swing_wider_band(self):
        def band(swing):
            circuit, nets = _forced_vout_fixture(ComparatorConfig(swing=swing))
            result = transient(circuit, t_stop=200e-9, dt=0.1e-9)
            flag_diff = result.wave(nets.flag) - result.wave(nets.flagb)
            detect, release = hysteresis_thresholds(result.wave("vout"),
                                                    flag_diff, 0.0)
            return release - detect

        assert band(0.20) > band(0.12)

    def test_feedback_off_removes_hysteresis(self):
        circuit, nets = _forced_vout_fixture(ComparatorConfig(feedback=False))
        result = transient(circuit, t_stop=200e-9, dt=0.1e-9)
        flag_diff = result.wave(nets.flag) - result.wave(nets.flagb)
        detect, release = hysteresis_thresholds(result.wave("vout"),
                                                flag_diff, 0.0)
        assert detect is not None and release is not None
        assert abs(release - detect) < 0.012


class TestComparatorDcBehaviour:
    def test_pass_state_fault_free(self):
        chain = buffer_chain(TECH, n_stages=8)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets)
        op = operating_point(chain.circuit)
        assert _flag_state(op, monitor.nets)

    def test_fail_state_with_pipe(self):
        chain = buffer_chain(TECH, n_stages=8)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets)
        faulty = inject(chain.circuit, Pipe("DUT.Q3", 5e3))
        op = operating_point(faulty)
        assert not _flag_state(op, monitor.nets)

    def test_flag_at_cml_levels(self):
        chain = buffer_chain(TECH, n_stages=8)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets)
        op = operating_point(chain.circuit)
        assert op.voltage(monitor.nets.flag) == pytest.approx(TECH.vhigh,
                                                              abs=0.03)
        assert op.voltage(monitor.nets.flagb) == pytest.approx(TECH.vlow,
                                                               abs=0.03)

    def test_r0_restores_vout(self):
        """Without R0 the comparator bias current drags the fault-free
        vout far down (the section-6.3 problem R0 exists to solve)."""
        def quiescent_vout(r0):
            chain = buffer_chain(TECH, n_stages=1)
            monitor = build_shared_monitor(
                chain.circuit, chain.output_nets,
                comparator_config=ComparatorConfig(r0=r0))
            op = operating_point(chain.circuit)
            return op.voltage(monitor.vout)

        assert quiescent_vout(40e3) > quiescent_vout(4e6) + 0.05


class TestLoadSharing:
    def test_vout_decreases_linearly_with_n(self):
        points = []
        for n in (1, 10, 20, 30):
            chain = buffer_chain(TECH, n_stages=n)
            monitor = build_shared_monitor(chain.circuit, chain.output_nets)
            op = operating_point(chain.circuit)
            points.append((n, op.voltage(monitor.vout)))
        drops = [(points[i][1] - points[i + 1][1]) /
                 (points[i + 1][0] - points[i][0])
                 for i in range(len(points) - 1)]
        # Roughly constant per-gate slope (R0-dominated, paper Fig. 14).
        assert all(0.3e-3 < d < 3e-3 for d in drops)
        spread = max(drops) - min(drops)
        assert spread < 0.7 * max(drops)

    def test_safe_share_bound_order_of_45(self):
        """The fault-free vout(N) line crosses the guaranteed-pass
        threshold at N in the tens — the paper reports 45."""
        circuit, nets = _forced_vout_fixture()
        result = transient(circuit, t_stop=200e-9, dt=0.1e-9)
        flag_diff = result.wave(nets.flag) - result.wave(nets.flagb)
        _, release = hysteresis_thresholds(result.wave("vout"), flag_diff,
                                           0.0)

        samples = []
        for n in (1, 20, 40):
            chain = buffer_chain(TECH, n_stages=n)
            monitor = build_shared_monitor(chain.circuit, chain.output_nets)
            op = operating_point(chain.circuit)
            samples.append((n, op.voltage(monitor.vout)))
        (n0, v0), (_n1, _v1), (n2, v2) = samples
        slope = (v0 - v2) / (n2 - n0)
        safe_n = (v0 - release) / slope + n0
        assert 25 < safe_n < 70

    def test_sharing_does_not_mask_fault(self):
        """Paper: 'sharing will not obstruct fault detection'."""
        chain = buffer_chain(TECH, n_stages=20)
        monitor = build_shared_monitor(chain.circuit, chain.output_nets)
        faulty = inject(chain.circuit, Pipe("X7.Q3", 5e3))
        op = operating_point(faulty)
        assert not _flag_state(op, monitor.nets)

    def test_group_pairs(self):
        pairs = [(f"o{i}", f"ob{i}") for i in range(10)]
        groups = group_pairs(pairs, 4)
        assert [len(g) for g in groups] == [4, 4, 2]
        with pytest.raises(ValueError):
            group_pairs(pairs, 0)

    def test_empty_monitor_rejected(self):
        chain = buffer_chain(TECH, n_stages=1)
        with pytest.raises(ValueError):
            build_shared_monitor(chain.circuit, [])


class TestInsertion:
    def test_instrument_chain_groups(self):
        chain = buffer_chain(TECH, n_stages=8)
        design = instrument_chain(chain, max_share=3)
        assert len(design.monitors) == 3
        assert design.n_monitored_gates == 8
        assert len(design.flag_nets()) == 3

    def test_monitor_of_lookup(self):
        chain = buffer_chain(TECH, n_stages=8)
        design = instrument_chain(chain, max_share=3)
        assert design.monitor_of("op") is design.monitors[0]
        assert design.monitor_of("op6") is design.monitors[2]
        with pytest.raises(KeyError):
            design.monitor_of("bogus")

    def test_default_share_bound(self):
        assert MAX_SAFE_SHARE == 45
        chain = buffer_chain(TECH, n_stages=8)
        design = instrument_chain(chain)
        assert len(design.monitors) == 1

    def test_instrumented_fault_free_passes(self):
        chain = buffer_chain(TECH, n_stages=8)
        design = instrument_chain(chain)
        op = operating_point(chain.circuit)
        for flag, flagb in design.flag_nets():
            assert op.voltage(flag) > op.voltage(flagb)

    def test_instrumented_detects_fault_in_right_group(self):
        chain = buffer_chain(TECH, n_stages=8)
        design = instrument_chain(chain, max_share=4)
        faulty = inject(chain.circuit, Pipe("X55.Q3", 4e3))  # stage 6
        op = operating_point(faulty)
        states = [op.voltage(f) > op.voltage(fb)
                  for f, fb in design.flag_nets()]
        assert states[0] is True     # stages 1-4 clean
        assert states[1] is False    # stages 5-8 contain the fault

    def test_dual_emitter_insertion(self):
        chain = buffer_chain(TECH, n_stages=8)
        design = instrument_chain(chain, dual_emitter=True)
        q45_elements = [e for e in design.monitors[0].detector_elements
                        if ".Q45" in e]
        assert len(q45_elements) == 8
