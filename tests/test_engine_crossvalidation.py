"""Cross-validation of independent engine paths against each other.

Production confidence comes from agreement between implementations that
share no code path: dense vs sparse linear algebra, backward Euler vs
trapezoidal integration, transient vs DC-sweep hysteresis, edge-timed vs
ring-oscillator delay, and a divide-by-2 built from the synthesized DFF.
"""

import numpy as np
import pytest

from repro.circuit import Pulse, VoltageSource
from repro.cml import NOMINAL, buffer_chain, differential_prbs
from repro.faults import Pipe, inject
from repro.sim import SimOptions, operating_point, run_cycles, transient
from repro.testgen import LogicNetwork, synthesize

TECH = NOMINAL


class TestSparseVsDense:
    def _solve(self, circuit, threshold):
        options = SimOptions(sparse_threshold=threshold)
        return operating_point(circuit, options)

    def test_same_operating_point(self):
        chain = buffer_chain(TECH, n_stages=6)
        dense = self._solve(chain.circuit, 10_000)  # force dense
        sparse = self._solve(chain.circuit, 1)      # force sparse
        for net in chain.circuit.unknown_nets():
            assert sparse.voltage(net) == pytest.approx(
                dense.voltage(net), abs=1e-7)

    def test_same_faulty_operating_point(self):
        chain = buffer_chain(TECH, n_stages=4)
        faulty = inject(chain.circuit, Pipe("X2.Q3", 4e3))
        dense = self._solve(faulty, 10_000)
        sparse = self._solve(faulty, 1)
        assert sparse.voltage("op2") == pytest.approx(dense.voltage("op2"),
                                                      abs=1e-7)

    def test_same_transient(self):
        def run(threshold):
            chain = buffer_chain(TECH, n_stages=2, frequency=1e9)
            return run_cycles(chain.circuit, 1e9, cycles=1.0,
                              points_per_cycle=100,
                              options=SimOptions(sparse_threshold=threshold))

        dense = run(10_000)
        sparse = run(1)
        assert np.allclose(dense.wave("op2").values,
                           sparse.wave("op2").values, atol=1e-6)


class TestIntegratorAgreement:
    def test_be_and_trap_converge_to_same_levels(self):
        """Both integration methods agree on settled plateau levels."""
        def levels(method):
            chain = buffer_chain(TECH, n_stages=2, frequency=100e6)
            result = run_cycles(chain.circuit, 100e6, cycles=2.0,
                                points_per_cycle=400,
                                options=SimOptions(integration=method))
            return result.wave("op2").window(8e-9, 20e-9).levels()

        trap = levels("trap")
        be = levels("be")
        assert be[0] == pytest.approx(trap[0], abs=2e-3)
        assert be[1] == pytest.approx(trap[1], abs=2e-3)


class TestDividerAtTransistorLevel:
    def test_divide_by_two(self):
        """A DFF with its inverted output fed back halves the clock —
        gate-level intent verified on the synthesized transistor netlist.
        """
        network = LogicNetwork("divider")
        network.add_gate("INV", "inverter", ["q"], "d")
        network.add_gate("FF", "dff", ["d"], "q")
        network.add_output("q")
        design = synthesize(network, TECH)
        circuit = design.circuit

        clock = 200e6
        clk_p, clk_n = design.clock_nets
        circuit.add(VoltageSource("VCLK", clk_p, "0",
                                  Pulse.square(TECH.vlow, TECH.vhigh,
                                               clock)))
        circuit.add(VoltageSource("VCLKB", clk_n, "0",
                                  Pulse.square(TECH.vhigh, TECH.vlow,
                                               clock)))
        result = transient(circuit, t_stop=60e-9, dt=50e-12)
        q = result.differential(*design.pair("q")).window(15e-9, 60e-9)
        edges = q.crossings(0.0, "rise")
        assert len(edges) >= 3
        periods = [b - a for a, b in zip(edges, edges[1:])]
        for period in periods:
            assert period == pytest.approx(2.0 / clock, rel=0.1)


class TestPrbsStimulus:
    def test_differential_prbs_complementary(self):
        wave_p, wave_n = differential_prbs(TECH, 1e-9, seed=3)
        for t in (0.4e-9, 3.6e-9, 17.2e-9, 64.9e-9):
            total = wave_p.value(t) + wave_n.value(t)
            assert total == pytest.approx(TECH.vhigh + TECH.vlow,
                                          abs=1e-9)

    def test_prbs_drives_chain(self):

        chain = buffer_chain(TECH, n_stages=3, frequency=100e6,
                             stimulus=differential_prbs(TECH, 5e-9,
                                                        seed=9))
        result = run_cycles(chain.circuit, 100e6, cycles=4,
                            points_per_cycle=200)
        out = result.wave("op3").window(10e-9, 40e-9)
        vlow, vhigh = out.levels()
        assert vhigh - vlow == pytest.approx(TECH.swing, rel=0.1)
